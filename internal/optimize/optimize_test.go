package optimize

import (
	"math"
	"testing"
	"testing/quick"

	"clite/internal/resource"
	"clite/internal/stats"
)

func TestProjectBoundedSimplexAlreadyFeasible(t *testing.T) {
	v := []float64{2, 3, 5}
	got := ProjectBoundedSimplex(v, 1, 8, 10)
	for i := range v {
		if math.Abs(got[i]-v[i]) > 1e-6 {
			t.Errorf("feasible input should be unchanged: %v -> %v", v, got)
		}
	}
}

func TestProjectBoundedSimplexKnownCases(t *testing.T) {
	// Sum too high: uniform reduction when no bound binds.
	got := ProjectBoundedSimplex([]float64{4, 4, 4}, 1, 10, 9)
	for _, x := range got {
		if math.Abs(x-3) > 1e-6 {
			t.Errorf("uniform reduction: %v", got)
		}
	}
	// Lower bound binds.
	got = ProjectBoundedSimplex([]float64{0, 0, 9}, 1, 10, 10)
	if math.Abs(got[0]-1) > 1e-5 || math.Abs(got[1]-1) > 1e-5 || math.Abs(got[2]-8) > 1e-5 {
		t.Errorf("lower bound case: %v", got)
	}
	// Upper bound binds.
	got = ProjectBoundedSimplex([]float64{100, 1, 1}, 1, 5, 7)
	if math.Abs(got[0]-5) > 1e-5 || math.Abs(got[1]-1) > 1e-5 || math.Abs(got[2]-1) > 1e-5 {
		t.Errorf("upper bound case: %v", got)
	}
	if got := ProjectBoundedSimplex(nil, 1, 5, 0); len(got) != 0 {
		t.Error("empty input should yield empty output")
	}
}

func TestProjectBoundedSimplexProperty(t *testing.T) {
	rng := stats.NewRNG(3)
	f := func(seed int64, nByte, totByte uint8) bool {
		local := rng.Split(seed)
		n := 2 + int(nByte%6)
		lo, hi := 1.0, 12.0
		minTot, maxTot := lo*float64(n), hi*float64(n)
		total := minTot + (maxTot-minTot)*float64(totByte)/255
		v := make([]float64, n)
		for i := range v {
			v[i] = local.Normal(5, 10)
		}
		got := ProjectBoundedSimplex(v, lo, hi, total)
		var sum float64
		for _, x := range got {
			if x < lo-1e-6 || x > hi+1e-6 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-total) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProjectionIsIdempotent(t *testing.T) {
	rng := stats.NewRNG(7)
	for i := 0; i < 50; i++ {
		v := []float64{rng.Normal(0, 20), rng.Normal(0, 20), rng.Normal(0, 20), rng.Normal(0, 20)}
		p1 := ProjectBoundedSimplex(v, 1, 9, 12)
		p2 := ProjectBoundedSimplex(p1, 1, 9, 12)
		for j := range p1 {
			if math.Abs(p1[j]-p2[j]) > 1e-5 {
				t.Fatalf("projection not idempotent: %v vs %v", p1, p2)
			}
		}
	}
}

// quadraticObjective builds a concave bowl with its peak at target.
func quadraticObjective(target []float64) func([]float64) float64 {
	return func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - target[i]
			s -= d * d
		}
		return s
	}
}

func TestMaximizeFindsInteriorOptimum(t *testing.T) {
	topo := resource.Small() // 3 resources × 10 units
	nJobs := 2
	// Peak at job0=(7,3,6), job1=(3,7,4) — feasible (columns sum to 10).
	target := []float64{7, 3, 6, 3, 7, 4}
	got := Maximize(Problem{
		Topo: topo, NJobs: nJobs,
		Objective: quadraticObjective(target),
		FrozenJob: -1,
		RNG:       stats.NewRNG(1),
	})
	for i := range target {
		if math.Abs(got[i]-target[i]) > 0.5 {
			t.Fatalf("Maximize = %v, want ≈%v", got, target)
		}
	}
}

func TestMaximizeRespectsConstraintsWhenPeakInfeasible(t *testing.T) {
	topo := resource.Small()
	nJobs := 2
	// Peak wants everything for job 0 — infeasible; the solution must
	// sit on the boundary (9, 1 per resource).
	target := []float64{20, 20, 20, -5, -5, -5}
	got := Maximize(Problem{
		Topo: topo, NJobs: nJobs,
		Objective: quadraticObjective(target),
		FrozenJob: -1,
		RNG:       stats.NewRNG(2),
	})
	nres := len(topo)
	for r := 0; r < nres; r++ {
		var sum float64
		for j := 0; j < nJobs; j++ {
			sum += got[j*nres+r]
		}
		if math.Abs(sum-10) > 1e-4 {
			t.Fatalf("sum constraint violated at resource %d: %v", r, got)
		}
		if got[0*nres+r] < 8.9 {
			t.Errorf("job 0 should be pushed to its cap at resource %d: %v", r, got)
		}
	}
}

func TestMaximizeHonoursFrozenJob(t *testing.T) {
	topo := resource.Small()
	nJobs := 3
	frozen := resource.Allocation{4, 4, 4}
	target := []float64{8, 8, 8, 1, 1, 1, 1, 1, 1}
	got := Maximize(Problem{
		Topo: topo, NJobs: nJobs,
		Objective:   quadraticObjective(target),
		FrozenJob:   1,
		FrozenAlloc: frozen,
		RNG:         stats.NewRNG(3),
	})
	nres := len(topo)
	for r := 0; r < nres; r++ {
		if math.Abs(got[1*nres+r]-4) > 1e-6 {
			t.Fatalf("frozen job drifted: %v", got)
		}
		var sum float64
		for j := 0; j < nJobs; j++ {
			sum += got[j*nres+r]
		}
		if math.Abs(sum-10) > 1e-4 {
			t.Fatalf("sum constraint violated with frozen job: %v", got)
		}
	}
}

func TestMaximizeUsesWarmStarts(t *testing.T) {
	topo := resource.Small()
	nJobs := 2
	// A needle objective only a warm start can find: reward within a
	// tight ball around (2,2,2)/(8,8,8).
	needle := []float64{2, 2, 2, 8, 8, 8}
	obj := func(x []float64) float64 {
		var d float64
		for i := range x {
			dd := x[i] - needle[i]
			d += dd * dd
		}
		if d > 4 {
			return 0
		}
		return 10 - d
	}
	got := Maximize(Problem{
		Topo: topo, NJobs: nJobs,
		Objective: obj,
		FrozenJob: -1,
		Starts:    [][]float64{needle},
		RNG:       stats.NewRNG(4),
	})
	if obj(got) < 9 {
		t.Errorf("warm start should land on the needle: %v (obj %v)", got, obj(got))
	}
}

func TestMaximizeToConfigIsFeasible(t *testing.T) {
	topo := resource.Default()
	rng := stats.NewRNG(5)
	f := func(seed int64, jobsByte uint8) bool {
		nJobs := 2 + int(jobsByte%3)
		local := rng.Split(seed)
		peak := resource.Random(topo, nJobs, local).Vector()
		cfg := MaximizeToConfig(Problem{
			Topo: topo, NJobs: nJobs,
			Objective:       quadraticObjective(peak),
			FrozenJob:       -1,
			NumRandomStarts: 3,
			Iterations:      25,
			RNG:             local,
		})
		return cfg.Validate(topo) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMaximizeDeterministicGivenSeed(t *testing.T) {
	topo := resource.Small()
	target := []float64{6, 4, 5, 4, 6, 5}
	run := func() []float64 {
		return Maximize(Problem{
			Topo: topo, NJobs: 2,
			Objective: quadraticObjective(target),
			FrozenJob: -1,
			RNG:       stats.NewRNG(42),
		})
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce the same solution")
		}
	}
}
