//go:build race

package optimize

// raceEnabled gates allocation-count assertions: under the race
// detector sync.Pool intentionally drops items, so pooled paths
// allocate nondeterministically.
const raceEnabled = true
