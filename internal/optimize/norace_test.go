//go:build !race

package optimize

const raceEnabled = false
