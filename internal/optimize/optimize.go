// Package optimize maximizes acquisition functions over the feasible
// partition polytope of Eq. 4–6 in the paper: for every resource r and
// job j, 1 ≤ x(j,r) ≤ Nunits(r)−Njobs+1, and Σ_j x(j,r) = Nunits(r).
//
// The paper plugs SciPy's SLSQP in as an off-the-shelf local solver for
// this constrained maximization. Here the same role is played by
// multi-start projected gradient ascent: the feasible set is, per
// resource, a box-bounded simplex, onto which exact Euclidean
// projection is cheap (a breakpoint walk on the dual shift). The
// substitution is behaviour-preserving — both are local constrained
// maximizers over the identical feasible set, restarted from multiple
// points.
//
// The multi-starts are independent, so Maximize fans them out over a
// bounded worker pool and reduces the results in start order — the
// winner is a pure function of the start list, never of goroutine
// scheduling (DESIGN.md §8).
package optimize

import (
	"math"
	"sort"
	"sync"

	"clite/internal/par"
	"clite/internal/resource"
	"clite/internal/stats"
)

// ProjectBoundedSimplex returns the Euclidean projection of v onto
// {x : lo ≤ x_i ≤ hi, Σ x_i = total}: the unique shift τ with
// Σ clamp(v_i − τ, lo, hi) = total is found exactly by walking the
// sorted breakpoints of that piecewise-linear sum. The feasible set
// must be non-empty: n·lo ≤ total ≤ n·hi.
func ProjectBoundedSimplex(v []float64, lo, hi, total float64) []float64 {
	out := append([]float64(nil), v...)
	var scratch []float64
	projectBoundedSimplexInPlace(out, lo, hi, total, &scratch)
	return out
}

// projectBoundedSimplexInPlace projects v in place. scratch is a
// reusable breakpoint buffer (grown to 2·len(v)); passing the same
// pointer across calls makes the projection allocation-free, which
// matters because the ascent loop projects every candidate step.
func projectBoundedSimplexInPlace(v []float64, lo, hi, total float64, scratch *[]float64) {
	n := len(v)
	if n == 0 {
		return
	}
	// g(τ) = Σ clamp(v_i − τ, lo, hi) is non-increasing and piecewise
	// linear with breakpoints at v_i − hi (coordinate i leaves its hi
	// cap) and v_i − lo (coordinate i hits its lo floor).
	bp := (*scratch)[:0]
	for _, x := range v {
		bp = append(bp, x-hi, x-lo)
	}
	sort.Float64s(bp)
	*scratch = bp
	g := func(tau float64) float64 {
		var s float64
		for _, x := range v {
			s += stats.Clamp(x-tau, lo, hi)
		}
		return s
	}
	tau := bp[len(bp)-1]
	if gFirst := g(bp[0]); gFirst <= total {
		// total ≥ g everywhere right of the flat n·hi ray; the first
		// breakpoint is the closest feasible shift.
		tau = bp[0]
	} else {
		gPrev := gFirst
		for k := 1; k < len(bp); k++ {
			gk := g(bp[k])
			if gk <= total {
				// τ* lies on the linear segment [bp[k−1], bp[k]].
				tau = bp[k-1]
				if gPrev > gk {
					tau += (gPrev - total) * (bp[k] - bp[k-1]) / (gPrev - gk)
				}
				break
			}
			gPrev = gk
			tau = bp[k]
		}
	}
	for i, x := range v {
		v[i] = stats.Clamp(x-tau, lo, hi)
	}
}

// Problem specifies one acquisition-maximization instance.
type Problem struct {
	Topo  resource.Topology
	NJobs int
	// Objective is evaluated on job-major continuous unit vectors
	// (resource.Config.Vector layout) and maximized. With Workers ≠ 1
	// it is called from multiple goroutines concurrently and must be
	// safe for that — pure functions (GP posteriors, response
	// surfaces) qualify; closures carrying mutable scratch must keep
	// it per-goroutine (sync.Pool).
	Objective func(x []float64) float64
	// BatchObjective, when non-nil, must write Objective(xs[i]) into
	// out[i] for every row — bit-equal to per-row Objective calls (the
	// GP posterior's batched path satisfies this). The gradient
	// estimator then routes its 2·dim finite-difference probes through
	// one call instead of 2·dim, which is what lets a GP-backed
	// acquisition hoist kernel dispatch and factor-row traversal out of
	// the probe loop. The ascent itself is unchanged: probe vectors,
	// gradients, and accepted steps are byte-identical either way.
	BatchObjective func(xs [][]float64, out []float64)
	// FrozenJob, if ≥ 0, pins that job's allocation to FrozenAlloc —
	// the paper's dropout-copy dimensionality reduction (Sec. 4).
	FrozenJob   int
	FrozenAlloc resource.Allocation
	// Starts are optional warm-start vectors (e.g. the incumbent).
	Starts [][]float64
	// NumRandomStarts adds random feasible restarts (default 8).
	NumRandomStarts int
	// Iterations bounds gradient steps per start (default 60).
	Iterations int
	RNG        *stats.RNG
	// Workers bounds the concurrent multi-start ascents: 0 means
	// runtime.NumCPU(), 1 forces the sequential path. The result is
	// byte-identical for every setting — random starts are drawn from
	// the RNG before the fan-out and the best ascent is selected by
	// start order, so scheduling never leaks into the answer.
	Workers int
	// Scratch, when non-nil, provides reusable storage for the start
	// vectors and per-start results, making repeated Maximize calls
	// allocation-free at steady state. The returned vector aliases the
	// scratch and is valid until the next Maximize call using it.
	Scratch *Scratch
}

// Scratch holds Maximize's reusable state: the flat arena backing the
// start vectors, the per-start values, and the random-start draw
// buffers. One Scratch serves one caller at a time (the BO engine owns
// one per run loop).
type Scratch struct {
	startsBuf []float64
	starts    [][]float64
	vals      []float64
	randCfg   resource.Config
	cuts      []int
}

func (p *Problem) iterations() int {
	if p.Iterations > 0 {
		return p.Iterations
	}
	return 60
}

func (p *Problem) randomStarts() int {
	if p.NumRandomStarts > 0 {
		return p.NumRandomStarts
	}
	return 8
}

// ascender owns the scratch one gradient ascent needs; pooling them
// keeps the hot loop allocation-free without sharing state between
// concurrent starts.
type ascender struct {
	cand, grad []float64
	free       []float64
	idx        []int
	bp         []float64
	// Batched-gradient scratch: probe rows (flat, point-major) and
	// their objective values.
	probeBuf  []float64
	probeRows [][]float64
	probeVals []float64
}

var ascenderPool = sync.Pool{New: func() any { return new(ascender) }}

// scratchOrNew settles the scratch pointer in one declaration: the
// par workers below capture it, so it must never be reassigned after
// the pool launches.
func scratchOrNew(s *Scratch) *Scratch {
	if s == nil {
		return &Scratch{}
	}
	return s
}

// Maximize runs multi-start projected gradient ascent and returns the
// best feasible continuous vector found (job-major units).
func Maximize(p Problem) []float64 {
	s := scratchOrNew(p.Scratch)
	dim := p.NJobs * len(p.Topo)
	nStarts := len(p.Starts) + p.randomStarts()
	if cap(s.startsBuf) < nStarts*dim {
		s.startsBuf = make([]float64, nStarts*dim)
	}
	s.startsBuf = s.startsBuf[:nStarts*dim]
	if cap(s.starts) < nStarts {
		s.starts = make([][]float64, 0, nStarts)
	}
	s.starts = s.starts[:0]
	if cap(s.vals) < nStarts {
		s.vals = make([]float64, nStarts)
	}
	s.vals = s.vals[:nStarts]

	scratch := ascenderPool.Get().(*ascender)
	for i, st := range p.Starts {
		row := s.startsBuf[i*dim : (i+1)*dim : (i+1)*dim]
		copy(row, st)
		p.projectInPlace(row, scratch)
		s.starts = append(s.starts, row)
	}
	for i := len(p.Starts); i < nStarts; i++ {
		resource.RandomInto(p.Topo, p.NJobs, p.RNG, &s.randCfg, &s.cuts)
		row := s.randCfg.VectorInto(s.startsBuf[i*dim : i*dim : (i+1)*dim])
		p.projectInPlace(row, scratch)
		s.starts = append(s.starts, row)
	}
	ascenderPool.Put(scratch)

	// ascend mutates each start in place and returns it, so the starts
	// themselves hold the ascended points — only the values need slots.
	par.ForEach(p.Workers, len(s.starts), func(i int) {
		a := ascenderPool.Get().(*ascender)
		_, s.vals[i] = p.ascend(s.starts[i], a)
		ascenderPool.Put(a)
	})

	var best []float64
	bestVal := math.Inf(-1)
	for i, x := range s.starts {
		if s.vals[i] > bestVal {
			bestVal = s.vals[i]
			best = x
		}
	}
	return best
}

// ascend performs projected gradient ascent from start with a
// backtracking step size, reusing the ascender's buffers. The start
// slice is ascended in place and returned.
func (p *Problem) ascend(start []float64, a *ascender) ([]float64, float64) {
	x := start
	fx := p.Objective(x)
	step := 2.0 // units; the search space spans tens of units per axis
	if cap(a.grad) < len(x) {
		a.grad = make([]float64, len(x))
		a.cand = make([]float64, len(x))
	}
	grad := a.grad[:len(x)]
	cand := a.cand[:len(x)]
	for iter := 0; iter < p.iterations(); iter++ {
		p.gradient(x, grad, a)
		improved := false
		for tries := 0; tries < 6; tries++ {
			for i := range x {
				cand[i] = x[i] + step*grad[i]
			}
			p.projectInPlace(cand, a)
			if fc := p.Objective(cand); fc > fx {
				copy(x, cand)
				fx = fc
				improved = true
				break
			}
			step /= 2
			if step < 1e-3 {
				return x, fx
			}
		}
		if !improved {
			return x, fx
		}
	}
	return x, fx
}

// gradient fills g with a central-difference estimate of ∇Objective,
// skipping frozen coordinates. Differences stay inside the feasible
// set only approximately; the objective must tolerate slightly
// infeasible probes (acquisition surfaces do).
//
// With BatchObjective set, the 2·dim probe points are snapshotted and
// scored in one batched call instead of 2·dim scalar ones. The
// snapshots are taken at exactly the states the sequential path would
// evaluate — including the rounding drift the restore step
// (x[i]+h−2h+h) leaves behind, which later coordinates' probes
// observe — so probe vectors, g, and the normalization are
// byte-identical on both paths.
func (p *Problem) gradient(x []float64, g []float64, a *ascender) {
	const h = 0.25
	nres := len(p.Topo)
	if p.BatchObjective != nil {
		dim := len(x)
		if cap(a.probeBuf) < 2*dim*dim {
			a.probeBuf = make([]float64, 2*dim*dim)
			a.probeRows = make([][]float64, 0, 2*dim)
			a.probeVals = make([]float64, 2*dim)
		}
		a.probeRows = a.probeRows[:0]
		for i := range x {
			if p.FrozenJob >= 0 && i/nres == p.FrozenJob {
				continue
			}
			k := len(a.probeRows)
			up := a.probeBuf[k*dim : (k+1)*dim : (k+1)*dim]
			down := a.probeBuf[(k+1)*dim : (k+2)*dim : (k+2)*dim]
			x[i] += h
			copy(up, x)
			x[i] -= 2 * h
			copy(down, x)
			x[i] += h
			a.probeRows = append(a.probeRows, up, down)
		}
		vals := a.probeVals[:len(a.probeRows)]
		p.BatchObjective(a.probeRows, vals)
		norm := 0.0
		k := 0
		for i := range x {
			if p.FrozenJob >= 0 && i/nres == p.FrozenJob {
				g[i] = 0
				continue
			}
			g[i] = (vals[k] - vals[k+1]) / (2 * h)
			k += 2
			norm += g[i] * g[i]
		}
		if norm = math.Sqrt(norm); norm > 1e-12 {
			for i := range g {
				g[i] /= norm
			}
		}
		return
	}
	norm := 0.0
	for i := range x {
		if p.FrozenJob >= 0 && i/nres == p.FrozenJob {
			g[i] = 0
			continue
		}
		x[i] += h
		up := p.Objective(x)
		x[i] -= 2 * h
		down := p.Objective(x)
		x[i] += h
		g[i] = (up - down) / (2 * h)
		norm += g[i] * g[i]
	}
	// Normalize so the step size is in units, not objective scale.
	if norm = math.Sqrt(norm); norm > 1e-12 {
		for i := range g {
			g[i] /= norm
		}
	}
}

// projectInPlace maps x onto the feasible polytope, resource by
// resource, honouring a frozen job, with all scratch taken from a.
func (p *Problem) projectInPlace(x []float64, a *ascender) {
	nres := len(p.Topo)
	for r := 0; r < nres; r++ {
		total := float64(p.Topo[r].Units)
		hi := float64(resource.MaxUnitsPerJob(p.Topo, p.NJobs, r))
		// Collect the free coordinates of this resource.
		a.free = a.free[:0]
		a.idx = a.idx[:0]
		for j := 0; j < p.NJobs; j++ {
			i := j*nres + r
			if j == p.FrozenJob {
				x[i] = float64(p.FrozenAlloc[r])
				total -= float64(p.FrozenAlloc[r])
				continue
			}
			a.free = append(a.free, x[i])
			a.idx = append(a.idx, i)
		}
		projectBoundedSimplexInPlace(a.free, 1, hi, total, &a.bp)
		for k, i := range a.idx {
			x[i] = a.free[k]
		}
	}
}

// MaximizeToConfig is Maximize followed by sum-preserving integer
// rounding, yielding a feasible partition configuration.
func MaximizeToConfig(p Problem) resource.Config {
	x := Maximize(p)
	return resource.RoundFeasible(p.Topo, p.NJobs, x)
}
