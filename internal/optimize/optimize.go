// Package optimize maximizes acquisition functions over the feasible
// partition polytope of Eq. 4–6 in the paper: for every resource r and
// job j, 1 ≤ x(j,r) ≤ Nunits(r)−Njobs+1, and Σ_j x(j,r) = Nunits(r).
//
// The paper plugs SciPy's SLSQP in as an off-the-shelf local solver for
// this constrained maximization. Here the same role is played by
// multi-start projected gradient ascent: the feasible set is, per
// resource, a box-bounded simplex, onto which exact Euclidean
// projection is cheap (bisection on the dual shift). The substitution
// is behaviour-preserving — both are local constrained maximizers over
// the identical feasible set, restarted from multiple points.
package optimize

import (
	"math"

	"clite/internal/resource"
	"clite/internal/stats"
)

// ProjectBoundedSimplex returns the Euclidean projection of v onto
// {x : lo ≤ x_i ≤ hi, Σ x_i = total}. It bisects on the shift τ such
// that Σ clamp(v_i − τ, lo, hi) = total, which is monotone in τ.
// The feasible set must be non-empty: n·lo ≤ total ≤ n·hi.
func ProjectBoundedSimplex(v []float64, lo, hi, total float64) []float64 {
	n := len(v)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	sumAt := func(tau float64) float64 {
		var s float64
		for _, x := range v {
			s += stats.Clamp(x-tau, lo, hi)
		}
		return s
	}
	// Bracket τ: shifting by ±(max|v|+hi) saturates every coordinate.
	span := hi - lo + 1
	for _, x := range v {
		if a := math.Abs(x); a > span {
			span = a
		}
	}
	tauLo, tauHi := -2*span-1, 2*span+1
	for i := 0; i < 100; i++ {
		mid := (tauLo + tauHi) / 2
		if sumAt(mid) > total {
			tauLo = mid
		} else {
			tauHi = mid
		}
	}
	tau := (tauLo + tauHi) / 2
	for i, x := range v {
		out[i] = stats.Clamp(x-tau, lo, hi)
	}
	return out
}

// Problem specifies one acquisition-maximization instance.
type Problem struct {
	Topo  resource.Topology
	NJobs int
	// Objective is evaluated on job-major continuous unit vectors
	// (resource.Config.Vector layout) and maximized.
	Objective func(x []float64) float64
	// FrozenJob, if ≥ 0, pins that job's allocation to FrozenAlloc —
	// the paper's dropout-copy dimensionality reduction (Sec. 4).
	FrozenJob   int
	FrozenAlloc resource.Allocation
	// Starts are optional warm-start vectors (e.g. the incumbent).
	Starts [][]float64
	// NumRandomStarts adds random feasible restarts (default 8).
	NumRandomStarts int
	// Iterations bounds gradient steps per start (default 60).
	Iterations int
	RNG        *stats.RNG
}

func (p *Problem) iterations() int {
	if p.Iterations > 0 {
		return p.Iterations
	}
	return 60
}

func (p *Problem) randomStarts() int {
	if p.NumRandomStarts > 0 {
		return p.NumRandomStarts
	}
	return 8
}

// Maximize runs multi-start projected gradient ascent and returns the
// best feasible continuous vector found (job-major units).
func Maximize(p Problem) []float64 {
	starts := make([][]float64, 0, len(p.Starts)+p.randomStarts())
	for _, s := range p.Starts {
		starts = append(starts, p.project(append([]float64(nil), s...)))
	}
	for i := 0; i < p.randomStarts(); i++ {
		cfg := resource.Random(p.Topo, p.NJobs, p.RNG)
		starts = append(starts, p.project(cfg.Vector()))
	}
	var best []float64
	bestVal := math.Inf(-1)
	for _, start := range starts {
		x, val := p.ascend(start)
		if val > bestVal {
			bestVal = val
			best = x
		}
	}
	return best
}

// ascend performs projected gradient ascent from start with a
// backtracking step size.
func (p Problem) ascend(start []float64) ([]float64, float64) {
	x := append([]float64(nil), start...)
	fx := p.Objective(x)
	step := 2.0 // units; the search space spans tens of units per axis
	grad := make([]float64, len(x))
	for iter := 0; iter < p.iterations(); iter++ {
		p.gradient(x, grad)
		cand := make([]float64, len(x))
		improved := false
		for tries := 0; tries < 6; tries++ {
			for i := range x {
				cand[i] = x[i] + step*grad[i]
			}
			cand = p.project(cand)
			if fc := p.Objective(cand); fc > fx {
				copy(x, cand)
				fx = fc
				improved = true
				break
			}
			step /= 2
			if step < 1e-3 {
				return x, fx
			}
		}
		if !improved {
			return x, fx
		}
	}
	return x, fx
}

// gradient fills g with a central-difference estimate of ∇Objective,
// skipping frozen coordinates. Differences stay inside the feasible
// set only approximately; the objective must tolerate slightly
// infeasible probes (acquisition surfaces do).
func (p Problem) gradient(x []float64, g []float64) {
	const h = 0.25
	nres := len(p.Topo)
	norm := 0.0
	for i := range x {
		if p.FrozenJob >= 0 && i/nres == p.FrozenJob {
			g[i] = 0
			continue
		}
		x[i] += h
		up := p.Objective(x)
		x[i] -= 2 * h
		down := p.Objective(x)
		x[i] += h
		g[i] = (up - down) / (2 * h)
		norm += g[i] * g[i]
	}
	// Normalize so the step size is in units, not objective scale.
	if norm = math.Sqrt(norm); norm > 1e-12 {
		for i := range g {
			g[i] /= norm
		}
	}
}

// project maps an arbitrary vector onto the feasible polytope,
// resource by resource, honouring a frozen job.
func (p Problem) project(x []float64) []float64 {
	nres := len(p.Topo)
	out := append([]float64(nil), x...)
	for r := 0; r < nres; r++ {
		total := float64(p.Topo[r].Units)
		hi := float64(resource.MaxUnitsPerJob(p.Topo, p.NJobs, r))
		// Collect the free coordinates of this resource.
		free := make([]float64, 0, p.NJobs)
		idx := make([]int, 0, p.NJobs)
		for j := 0; j < p.NJobs; j++ {
			i := j*nres + r
			if j == p.FrozenJob {
				out[i] = float64(p.FrozenAlloc[r])
				total -= float64(p.FrozenAlloc[r])
				continue
			}
			free = append(free, out[i])
			idx = append(idx, i)
		}
		proj := ProjectBoundedSimplex(free, 1, hi, total)
		for k, i := range idx {
			out[i] = proj[k]
		}
	}
	return out
}

// MaximizeToConfig is Maximize followed by sum-preserving integer
// rounding, yielding a feasible partition configuration.
func MaximizeToConfig(p Problem) resource.Config {
	x := Maximize(p)
	return resource.RoundFeasible(p.Topo, p.NJobs, x)
}
