package optimize

import (
	"sync"
	"testing"

	"clite/internal/resource"
	"clite/internal/stats"
)

// quadObjective is a deterministic, concurrency-safe test surface
// with its optimum at target.
func quadObjective(target []float64) func([]float64) float64 {
	return func(x []float64) float64 {
		var s float64
		for i := range x {
			d := x[i] - target[i]
			s -= d * d
		}
		return s
	}
}

// TestMaximizeParallelIsByteIdentical runs the same problem with 1 and
// 8 workers (fresh identically-seeded RNGs, so the start sets match)
// and demands bit-equal results: the reduction is ordered by start
// index, so the winning ascent must not depend on scheduling.
func TestMaximizeParallelIsByteIdentical(t *testing.T) {
	topo := resource.Default()
	for seed := int64(0); seed < 8; seed++ {
		nJobs := 2 + int(seed)%3
		target := resource.EqualSplit(topo, nJobs).Vector()
		run := func(workers int) []float64 {
			return Maximize(Problem{
				Topo: topo, NJobs: nJobs,
				Objective: quadObjective(target),
				FrozenJob: -1,
				RNG:       stats.NewRNG(seed),
				Workers:   workers,
			})
		}
		seq := run(1)
		par := run(8)
		if len(seq) != len(par) {
			t.Fatalf("seed %d: length mismatch %d vs %d", seed, len(seq), len(par))
		}
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("seed %d coord %d: sequential %v parallel %v", seed, i, seq[i], par[i])
			}
		}
	}
}

// TestMaximizeParallelWithFrozenJob covers the dropout-copy path under
// concurrency: frozen coordinates must stay pinned in every worker.
func TestMaximizeParallelWithFrozenJob(t *testing.T) {
	topo := resource.Default()
	const nJobs = 4
	frozen := resource.EqualSplit(topo, nJobs).Jobs[1]
	target := resource.EqualSplit(topo, nJobs).Vector()
	run := func(workers int) []float64 {
		return Maximize(Problem{
			Topo: topo, NJobs: nJobs,
			Objective:   quadObjective(target),
			FrozenJob:   1,
			FrozenAlloc: frozen,
			RNG:         stats.NewRNG(3),
			Workers:     workers,
		})
	}
	seq := run(1)
	par := run(8)
	nres := len(topo)
	for r := 0; r < nres; r++ {
		if par[1*nres+r] != float64(frozen[r]) {
			t.Fatalf("frozen coordinate %d drifted: %v want %v", r, par[1*nres+r], frozen[r])
		}
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("coord %d: sequential %v parallel %v", i, seq[i], par[i])
		}
	}
}

// TestMaximizeConcurrentCallers exercises whole Maximize invocations
// racing each other (the ORACLE sweep and harness shards do this
// indirectly); the shared ascender pool must not leak state across
// problems.
func TestMaximizeConcurrentCallers(t *testing.T) {
	topo := resource.Default()
	var wg sync.WaitGroup
	results := make([][]float64, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nJobs := 2 + g%3
			target := resource.EqualSplit(topo, nJobs).Vector()
			results[g] = Maximize(Problem{
				Topo: topo, NJobs: nJobs,
				Objective: quadObjective(target),
				FrozenJob: -1,
				RNG:       stats.NewRNG(int64(g)),
				Workers:   2,
			})
		}(g)
	}
	wg.Wait()
	for g, res := range results {
		nJobs := 2 + g%3
		want := Maximize(Problem{
			Topo: topo, NJobs: nJobs,
			Objective: quadObjective(resource.EqualSplit(topo, nJobs).Vector()),
			FrozenJob: -1,
			RNG:       stats.NewRNG(int64(g)),
			Workers:   1,
		})
		for i := range want {
			if res[i] != want[i] {
				t.Fatalf("caller %d coord %d: got %v want %v", g, i, res[i], want[i])
			}
		}
	}
}
