// Package profile is the cluster scheduler's memory: a co-location
// profile cache that memoizes screening outcomes per canonicalized job
// mix, plus per-workload solo profiles that power an analytical
// admission pre-filter.
//
// The paper's warehouse-scale pitch (Sec. 1, Sec. 4) is that
// infeasible co-locations are detected cheaply and "scheduled
// elsewhere without wasting any BO cycles". A warehouse sees the same
// job mixes over and over — the scheduler should pay the BO screening
// cost for a mix once, not once per node per request. Nodes are
// homogeneous here (same topology, same spec), so feasibility of a
// mix is a property of the mix, not of the node it is tried on; the
// cache exploits exactly that.
//
// Three mechanisms, in the order a placement consults them:
//
//   - Solo profiles: for each workload at a quantized load, the
//     minimal per-resource allocation that meets QoS when every other
//     resource is at its full-machine value. Summed over a mix these
//     give an optimistic feasibility bound — if some resource's
//     minima already exceed its capacity, no partition can work and
//     the candidate is rejected with zero BO iterations.
//   - Exact hits: a mix whose canonical key has been screened before
//     reuses the memoized verdict and partition; the scheduler
//     validates a feasible hit with a single observation window
//     instead of a BO run.
//   - Near misses: a mix with the same workload multiset but slightly
//     different loads warm-starts the BO engine with the cached run's
//     best configurations instead of the engineered bootstrap.
//
// Loads are quantized to LoadQuantum buckets: mixes in the same
// bucket are treated as the same co-location. That is the cache's
// accuracy/throughput trade-off, and the single observation window
// the scheduler spends validating a cached partition on its target
// node is what keeps a stale or bucket-blurred entry from admitting a
// violating placement unchecked.
package profile

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"clite/internal/core"
	"clite/internal/qos"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/workload"
)

// LoadQuantum is the width of the load buckets mix keys quantize
// into: 5% of a workload's calibrated maximum, matching the paper's
// "memcached at 40%" granularity of describing offered load.
const LoadQuantum = 0.05

// Job is one job of a co-location mix, the cache's view of a
// scheduler request: a Table 3 workload name plus the offered load
// (0 for background jobs).
type Job struct {
	Workload string
	Load     float64
}

// IsLC reports whether the job is latency-critical (has a load).
func (j Job) IsLC() bool { return j.Load > 0 }

// Quantize rounds a load to the nearest LoadQuantum bucket.
func Quantize(load float64) float64 {
	return math.Round(load/LoadQuantum) * LoadQuantum
}

// Canonical returns the mix in canonical form: loads quantized, jobs
// sorted by workload name then load. The input is not modified.
func Canonical(jobs []Job) []Job {
	out := make([]Job, len(jobs))
	for i, j := range jobs {
		out[i] = Job{Workload: j.Workload, Load: Quantize(j.Load)}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Workload != out[b].Workload {
			return out[a].Workload < out[b].Workload
		}
		return out[a].Load < out[b].Load
	})
	return out
}

// Key renders the canonical cache key of a mix, e.g.
// "img-dnn@0.20|memcached@0.40|swaptions". Request order never
// matters: the same multiset of jobs always produces the same key.
func Key(jobs []Job) string {
	var b strings.Builder
	for i, j := range Canonical(jobs) {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(j.Workload)
		if j.IsLC() {
			fmt.Fprintf(&b, "@%.2f", j.Load)
		}
	}
	return b.String()
}

// signature is the loads-erased form of a key ("img-dnn|memcached|
// swaptions"), the index near-miss lookups search under.
func signature(jobs []Job) string {
	var b strings.Builder
	for i, j := range Canonical(jobs) {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(j.Workload)
	}
	return b.String()
}

// Entry is one memoized screening outcome.
type Entry struct {
	// Key is the canonical mix key the entry is stored under.
	Key string
	// Jobs is the canonical mix.
	Jobs []Job
	// Feasible records the screening verdict: every LC job of the mix
	// met its QoS target under the best partition found.
	Feasible bool
	// Result is the screening run's outcome; Result.Best is the
	// known-feasible partition an exact hit reuses.
	Result core.Result
	// Seeds are the run's most promising configurations, used to
	// warm-start the BO engine on a near-miss.
	Seeds []resource.Config
}

// SeedsFor returns the entry's warm-start configurations for a mix of
// nJobs jobs (cached configs with a different job count cannot seed
// the search and are dropped).
func (e *Entry) SeedsFor(nJobs int) []resource.Config {
	var out []resource.Config
	for _, cfg := range e.Seeds {
		if cfg.NumJobs() == nJobs {
			out = append(out, cfg)
		}
	}
	return out
}

// MaxSeeds bounds how many configurations an entry retains for
// warm-starting: the best partition plus the top few distinct
// runners-up.
const MaxSeeds = 4

// SeedsFromResult extracts the warm-start set from a screening run:
// the best configuration first, then the highest-scoring distinct
// usable samples from the trace.
func SeedsFromResult(res core.Result) []resource.Config {
	var out []resource.Config
	seen := map[string]bool{}
	add := func(cfg resource.Config) {
		if len(out) >= MaxSeeds || cfg.NumJobs() == 0 || seen[cfg.Key()] {
			return
		}
		seen[cfg.Key()] = true
		out = append(out, cfg.Clone())
	}
	add(res.Best)
	// Partial selection sort of the history by score, descending.
	idx := make([]int, 0, len(res.History))
	for i, s := range res.History {
		if s.Usable() {
			idx = append(idx, i)
		}
	}
	for k := 0; k < len(idx) && len(out) < MaxSeeds; k++ {
		for i := k + 1; i < len(idx); i++ {
			if res.History[idx[i]].Score > res.History[idx[k]].Score {
				idx[k], idx[i] = idx[i], idx[k]
			}
		}
		add(res.History[idx[k]].Config)
	}
	return out
}

// Stats counts what the cache did. All counters are cumulative.
type Stats struct {
	// Hits counts exact-key lookups that found an entry.
	Hits int
	// NearHits counts near-miss lookups that found a warm-start donor.
	NearHits int
	// Misses counts exact-key lookups that found nothing.
	Misses int
	// Stores counts entries committed (first write per key only).
	Stores int
}

// Cache memoizes screening outcomes and solo profiles. It is safe for
// concurrent use; every mutation is deterministic given the sequence
// of calls, so schedulers that commit entries in a fixed order get
// identical cache evolution at any worker count.
type Cache struct {
	topo resource.Topology

	// analytics, when non-nil, is the hub cache this overlay delegates
	// its solo-profile and calibration memoization to (see NewOverlay).
	// Solo profiles are pure functions of (workload, load bucket) and
	// topology, so sharing them across overlays is deterministic; mix
	// entries stay private to each overlay.
	analytics *Cache

	mu      sync.Mutex
	entries map[string]*Entry
	bySig   map[string][]*Entry // insertion order per signature
	journal []*Entry            // entries in Store order, for EntriesSince
	solo    map[string]*Solo
	cal     map[string]qos.Calibration
	stats   Stats
}

// NewCache returns an empty cache over the node topology.
func NewCache(topo resource.Topology) *Cache {
	return &Cache{
		topo:    topo,
		entries: make(map[string]*Entry),
		bySig:   make(map[string][]*Entry),
		solo:    make(map[string]*Solo),
		cal:     make(map[string]qos.Calibration),
	}
}

// NewOverlay returns an empty cache over hub's topology whose solo
// profiles and QoS calibrations are delegated to hub, while mix
// entries stay private. This is the fleet's per-cell cache shape: the
// expensive analytical state (pure per-workload functions, identical
// for every cell) is computed once fleet-wide, and the screening
// memos — whose contents depend on which cell screened the mix — are
// kept cell-local and exchanged only at deterministic sync points via
// EntriesSince + Store, so cache evolution never depends on how many
// shards ran concurrently.
func NewOverlay(hub *Cache) *Cache {
	c := NewCache(hub.topo)
	c.analytics = hub
	return c
}

// Lookup returns the entry stored under the exact canonical key.
func (c *Cache) Lookup(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return e, ok
}

// NearTolerance is the default per-job load distance within which a
// cached mix may warm-start the search for a new one: two quantization
// buckets.
const NearTolerance = 2 * LoadQuantum

// LookupNear finds a warm-start donor for the mix: an entry with the
// same workload multiset whose per-job (sorted, quantized) loads are
// all within tol, excluding the exact key itself. Among candidates the
// smallest total load distance wins, ties to the earliest-stored entry
// — a pure function of cache state, so lookups stay deterministic.
// Only feasible entries donate: seeding a search with the samples of a
// run that never found the feasible region would anchor it on failure.
func (c *Cache) LookupNear(jobs []Job, tol float64) (*Entry, bool) {
	canon := Canonical(jobs)
	key := Key(canon)
	sig := signature(canon)
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *Entry
	bestDist := math.Inf(1)
	for _, e := range c.bySig[sig] {
		if e.Key == key || !e.Feasible || len(e.Jobs) != len(canon) {
			continue
		}
		total, ok := 0.0, true
		for i := range canon {
			d := math.Abs(e.Jobs[i].Load - canon[i].Load)
			if d > tol+1e-9 {
				ok = false
				break
			}
			total += d
		}
		if ok && total < bestDist-1e-12 {
			best, bestDist = e, total
		}
	}
	if best != nil {
		c.stats.NearHits++
		return best, true
	}
	return nil, false
}

// Store commits an entry under its key, first write wins: schedulers
// screening several equivalent candidates keep the outcome of the
// first (in deterministic candidate order), which makes the cache's
// evolution independent of screening concurrency. It reports whether
// the entry was stored.
func (c *Cache) Store(e *Entry) bool {
	e.Jobs = Canonical(e.Jobs)
	if e.Key == "" {
		e.Key = Key(e.Jobs)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[e.Key]; exists {
		return false
	}
	c.entries[e.Key] = e
	sig := signature(e.Jobs)
	c.bySig[sig] = append(c.bySig[sig], e)
	c.journal = append(c.journal, e)
	c.stats.Stores++
	return true
}

// EntriesSince returns the entries committed after the given journal
// mark (0 means everything), in Store order, plus the new mark. Marks
// only grow, so a caller polling at sync barriers sees every entry
// exactly once; the returned slice is a copy and safe to iterate while
// other goroutines keep storing. Entries are treated as immutable once
// stored — adopters pass them straight to another cache's Store, whose
// first-write-wins rule keeps adoption idempotent.
func (c *Cache) EntriesSince(mark int) ([]*Entry, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if mark < 0 {
		mark = 0
	}
	if mark >= len(c.journal) {
		return nil, len(c.journal)
	}
	out := make([]*Entry, len(c.journal)-mark)
	copy(out, c.journal[mark:])
	return out, len(c.journal)
}

// Len returns the number of stored mix entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Solo is the analytical solo profile of one workload at one
// (floor-quantized) load: what the job needs of each resource when it
// has the rest of the machine to itself. MinUnits[r] is a lower bound
// on the job's share of resource r in ANY feasible partition — the
// other jobs can only take resources away from the solo setting — so
// sums of minima are a sound, optimistic admission bound.
type Solo struct {
	Workload string
	// Load is the floor-quantized load the profile was computed at.
	// Flooring keeps the bound optimistic: a job at 0.43 needs at
	// least what it needs at 0.40.
	Load float64
	LC   bool
	// Feasible reports whether the job meets QoS with the whole
	// machine; a solo-infeasible job makes every mix containing it
	// infeasible (the paper's Sec. 4 ejection case).
	Feasible bool
	// MinUnits is the per-resource minimum (topology order); nil when
	// !Feasible.
	MinUnits []int
}

// Solo returns the memoized solo profile of the workload at the load,
// computing it on first use (one binary search per resource over the
// noise-free workload model — a few hundred queue evaluations, paid
// once per workload/load bucket for the life of the cache).
func (c *Cache) Solo(name string, load float64) (*Solo, error) {
	if c.analytics != nil {
		return c.analytics.Solo(name, load)
	}
	q := math.Floor(load/LoadQuantum+1e-9) * LoadQuantum
	if load > 0 && q < LoadQuantum {
		q = LoadQuantum
	}
	key := fmt.Sprintf("%s@%.2f", name, q)
	c.mu.Lock()
	if s, ok := c.solo[key]; ok {
		c.mu.Unlock()
		return s, nil
	}
	c.mu.Unlock()

	// Compute outside the lock: profiles are pure functions of
	// (name, load bucket), so a racing duplicate computation returns
	// the same value and first-write-wins below keeps one.
	s, err := c.computeSolo(name, q)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.solo[key]; ok {
		return prev, nil
	}
	c.solo[key] = s
	return s, nil
}

func (c *Cache) computeSolo(name string, load float64) (*Solo, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	s := &Solo{Workload: name, Load: load, LC: p.Class == workload.LatencyCritical}
	if !s.LC {
		// BG jobs have no QoS gate; their floor is the one unit of
		// everything feasibility already demands.
		s.Feasible = true
		s.MinUnits = make([]int, len(c.topo))
		for r := range s.MinUnits {
			s.MinUnits[r] = 1
		}
		return s, nil
	}
	cal, err := c.calibration(p)
	if err != nil {
		return nil, err
	}
	lambda := load * cal.MaxQPS
	full := make(resource.Allocation, len(c.topo))
	for r := range c.topo {
		full[r] = c.topo[r].Units
	}
	meets := func(alloc resource.Allocation) bool {
		return p.P95(workload.Physical(c.topo, alloc), lambda, server.DefaultWindow) <= cal.QoSTarget
	}
	if !meets(full) {
		return s, nil // Feasible=false: hopeless even with everything
	}
	s.Feasible = true
	s.MinUnits = make([]int, len(c.topo))
	probe := full.Clone()
	for r := range c.topo {
		// p95 is monotone in every resource share (more never hurts in
		// the workload model), so the minimal feasible share is found
		// by bisection over [1, Units] with the other resources full.
		lo, hi := 1, c.topo[r].Units
		for lo < hi {
			mid := (lo + hi) / 2
			probe[r] = mid
			if meets(probe) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		s.MinUnits[r] = lo
		probe[r] = full[r]
	}
	return s, nil
}

// calibration memoizes the qos.Calibrate sweep per workload.
func (c *Cache) calibration(p *workload.Profile) (qos.Calibration, error) {
	if c.analytics != nil {
		return c.analytics.calibration(p)
	}
	c.mu.Lock()
	if cal, ok := c.cal[p.Name]; ok {
		c.mu.Unlock()
		return cal, nil
	}
	c.mu.Unlock()
	cal, err := qos.Calibrate(p, c.topo)
	if err != nil {
		return qos.Calibration{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.cal[p.Name]; ok {
		return prev, nil
	}
	c.cal[p.Name] = cal
	return cal, nil
}

// Admissible applies the analytical admission pre-filter to a mix: it
// sums the per-job solo minima and rejects the mix if any job is
// solo-infeasible or any resource's minima exceed its capacity. A true
// verdict proves nothing (the bound is optimistic — interference-free
// minima can coexist on paper but not in any real partition); a false
// verdict is decisive under the noise-free model, which is exactly the
// cheap "schedule it elsewhere" detection the paper calls for.
func (c *Cache) Admissible(jobs []Job) (bool, error) {
	need := make([]int, len(c.topo))
	for _, j := range jobs {
		s, err := c.Solo(j.Workload, j.Load)
		if err != nil {
			return false, err
		}
		if !s.Feasible {
			return false, nil
		}
		for r := range need {
			need[r] += s.MinUnits[r]
		}
	}
	for r, spec := range c.topo {
		if need[r] > spec.Units {
			return false, nil
		}
	}
	return true, nil
}
