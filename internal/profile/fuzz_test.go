package profile

import (
	"math"
	"math/rand"
	"testing"

	"clite/internal/resource"
)

// fuzzPalette supplies workload names; the cache's key mechanics do
// not validate names, so a fixed palette keeps mixes collision-prone
// (same signature, different loads) — exactly the interesting regime
// for near-miss lookups.
var fuzzPalette = []string{"memcached", "img-dnn", "xapian", "swaptions", "streamcluster"}

// clampLoad folds an arbitrary fuzzed float into a valid LC load,
// away from 0 so quantization cannot demote the job to background.
func clampLoad(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.35
	}
	return 0.1 + math.Mod(math.Abs(x), 1.3)
}

// FuzzMixKeyRoundTrip fuzzes the canonicalization and cache contract
// the placement pipeline depends on: quantization is idempotent, keys
// are permutation-invariant, Store/Lookup round-trips, first write
// wins, and a load-perturbed mix within NearTolerance finds the
// stored entry as a warm-start donor via LookupNear.
func FuzzMixKeyRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(2), 0.4, 0.2, 0.9, 0.6, 0.03)
	f.Add(int64(9), uint8(3), 0.35, 0.35, 0.35, 0.35, -0.04)
	f.Add(int64(-5), uint8(0), 1.2, 0.1, 0.5, 0.8, 0.0)
	f.Fuzz(func(t *testing.T, seed int64, count uint8, l0, l1, l2, l3, perturb float64) {
		rng := rand.New(rand.NewSource(seed))
		loads := []float64{l0, l1, l2, l3}
		n := 1 + int(count%4)
		jobs := make([]Job, n)
		for i := range jobs {
			jobs[i] = Job{Workload: fuzzPalette[rng.Intn(len(fuzzPalette))], Load: clampLoad(loads[i])}
		}

		for _, l := range []float64{l0, l1, l2, l3} {
			q := Quantize(clampLoad(l))
			if math.Float64bits(Quantize(q)) != math.Float64bits(q) {
				t.Fatalf("Quantize not idempotent: %v -> %v", q, Quantize(q))
			}
		}

		snapshot := append([]Job(nil), jobs...)
		key := Key(jobs)
		for i, j := range jobs {
			if j != snapshot[i] {
				t.Fatal("Key/Canonical mutated its input")
			}
		}
		reversed := make([]Job, n)
		for i, j := range jobs {
			reversed[n-1-i] = j
		}
		if got := Key(reversed); got != key {
			t.Fatalf("key not permutation-invariant: %q vs %q", key, got)
		}

		cache := NewCache(resource.Default())
		if !cache.Store(&Entry{Jobs: append([]Job(nil), jobs...), Feasible: true}) {
			t.Fatal("first store must succeed")
		}
		if cache.Store(&Entry{Jobs: append([]Job(nil), reversed...), Feasible: true}) {
			t.Fatal("second store of the same mix must lose (first write wins)")
		}
		e, ok := cache.Lookup(key)
		if !ok || e.Key != key {
			t.Fatalf("exact lookup of %q failed (ok=%v)", key, ok)
		}

		// Perturb every load by less than half a bucket beyond the
		// near tolerance and check LookupNear's verdict against the
		// distance definition computed independently here.
		delta := perturb
		if math.IsNaN(delta) || math.IsInf(delta, 0) {
			delta = 0.0
		}
		delta = math.Mod(delta, NearTolerance/2)
		perturbed := make([]Job, n)
		for i, j := range jobs {
			perturbed[i] = Job{Workload: j.Workload, Load: math.Max(0.1, j.Load+delta)}
		}
		pKey := Key(perturbed)
		if pKey == key {
			// Same bucket: the exact path must hit instead.
			if _, ok := cache.Lookup(pKey); !ok {
				t.Fatal("same-bucket perturbation missed the exact entry")
			}
			return
		}
		canonP, canonE := Canonical(perturbed), e.Jobs
		within := true
		for i := range canonP {
			if math.Abs(canonP[i].Load-canonE[i].Load) > NearTolerance+1e-9 {
				within = false
				break
			}
		}
		donor, found := cache.LookupNear(perturbed, NearTolerance)
		if within && (!found || donor.Key != key) {
			t.Fatalf("in-tolerance perturbation (delta %v) found no donor (found=%v)", delta, found)
		}
		if found && donor.Key == pKey {
			t.Fatal("LookupNear returned the exact key it must exclude")
		}
	})
}
