package profile

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"clite/internal/core"
	"clite/internal/resource"
)

func TestKeyIsOrderInsensitive(t *testing.T) {
	a := Key([]Job{{"memcached", 0.4}, {"img-dnn", 0.2}, {"swaptions", 0}})
	b := Key([]Job{{"swaptions", 0}, {"img-dnn", 0.2}, {"memcached", 0.4}})
	if a != b {
		t.Errorf("keys diverge on request order: %q vs %q", a, b)
	}
	if a != "img-dnn@0.20|memcached@0.40|swaptions" {
		t.Errorf("unexpected canonical key %q", a)
	}
}

func TestKeyQuantizesLoads(t *testing.T) {
	a := Key([]Job{{"memcached", 0.41}})
	b := Key([]Job{{"memcached", 0.39}})
	c := Key([]Job{{"memcached", 0.33}})
	if a != b {
		t.Errorf("0.41 and 0.39 should share the 0.40 bucket: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("0.41 and 0.33 should land in different buckets: both %q", a)
	}
}

func TestKeyDistinguishesDuplicateLoads(t *testing.T) {
	one := Key([]Job{{"memcached", 0.2}})
	two := Key([]Job{{"memcached", 0.2}, {"memcached", 0.2}})
	if one == two {
		t.Error("one and two copies of the same job must not collide")
	}
}

func resultWithBest(topo resource.Topology, nJobs int, score float64) core.Result {
	cfg := resource.EqualSplit(topo, nJobs)
	return core.Result{
		Best:        cfg,
		BestScore:   score,
		QoSMeetable: score > 0.5,
		History:     []core.Step{{Config: cfg, Score: score}},
	}
}

func TestStoreFirstWriteWins(t *testing.T) {
	c := NewCache(resource.Small())
	jobs := []Job{{"memcached", 0.2}}
	e1 := &Entry{Jobs: jobs, Feasible: true, Result: resultWithBest(resource.Small(), 1, 0.9)}
	e2 := &Entry{Jobs: jobs, Feasible: false}
	if !c.Store(e1) {
		t.Fatal("first store must succeed")
	}
	if c.Store(e2) {
		t.Error("second store of the same key must be a no-op")
	}
	got, ok := c.Lookup(Key(jobs))
	if !ok || !got.Feasible {
		t.Fatalf("lookup returned %+v, want the first entry", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	st := c.Stats()
	if st.Stores != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 store and 1 hit", st)
	}
}

func TestLookupNearFindsClosestFeasibleDonor(t *testing.T) {
	topo := resource.Small()
	c := NewCache(topo)
	mk := func(load float64, feasible bool) *Entry {
		return &Entry{
			Jobs:     []Job{{"memcached", load}, {"swaptions", 0}},
			Feasible: feasible,
			Result:   resultWithBest(topo, 2, 0.9),
		}
	}
	c.Store(mk(0.40, true))
	c.Store(mk(0.30, true))
	c.Store(mk(0.25, false)) // closest, but infeasible: must not donate

	probe := []Job{{"memcached", 0.25}, {"swaptions", 0}}
	e, ok := c.LookupNear(probe, NearTolerance)
	if !ok {
		t.Fatal("expected a near hit")
	}
	near := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
	if !near(e.Jobs[0].Load, 0.30) {
		t.Errorf("donor load = %.2f, want the closest feasible 0.30", e.Jobs[0].Load)
	}

	// Exact-key entries never count as near donors.
	c.Store(mk(0.25, true))
	e, ok = c.LookupNear(probe, NearTolerance)
	if !ok || !near(e.Jobs[0].Load, 0.30) {
		t.Errorf("exact key leaked into the near lookup: %+v", e)
	}

	// Different workload multisets never match.
	if _, ok := c.LookupNear([]Job{{"img-dnn", 0.30}, {"swaptions", 0}}, NearTolerance); ok {
		t.Error("near lookup crossed workload multisets")
	}
	// Beyond tolerance is a miss.
	if _, ok := c.LookupNear([]Job{{"memcached", 0.60}, {"swaptions", 0}}, NearTolerance); ok {
		t.Error("near lookup exceeded tolerance")
	}
}

func TestSeedsFromResultRanksAndDedups(t *testing.T) {
	topo := resource.Small()
	best := resource.EqualSplit(topo, 2)
	alt := resource.Extremum(topo, 2, 0)
	alt2 := resource.Extremum(topo, 2, 1)
	res := core.Result{
		Best: best,
		History: []core.Step{
			{Config: alt, Score: 0.7},
			{Config: best, Score: 0.9}, // duplicate of Best: dropped
			{Config: alt2, Score: 0.8},
			{Config: alt, Score: 0.6, Discarded: true}, // unusable: ignored
		},
	}
	seeds := SeedsFromResult(res)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want 3: %v", len(seeds), seeds)
	}
	if !seeds[0].Equal(best) {
		t.Error("best configuration must seed first")
	}
	if !seeds[1].Equal(alt2) || !seeds[2].Equal(alt) {
		t.Errorf("runners-up out of score order: %v", seeds[1:])
	}
	e := &Entry{Jobs: []Job{{"a", 0.1}, {"b", 0.1}}, Seeds: seeds}
	if got := e.SeedsFor(2); len(got) != 3 {
		t.Errorf("SeedsFor(2) = %d seeds, want 3", len(got))
	}
	if got := e.SeedsFor(3); len(got) != 0 {
		t.Errorf("SeedsFor(3) = %d seeds, want 0 (job count mismatch)", len(got))
	}
}

func TestSoloProfileShapes(t *testing.T) {
	c := NewCache(resource.Default())

	bg, err := c.Solo("swaptions", 0)
	if err != nil {
		t.Fatal(err)
	}
	if bg.LC || !bg.Feasible {
		t.Errorf("BG solo profile = %+v, want feasible non-LC", bg)
	}
	for r, u := range bg.MinUnits {
		if u != 1 {
			t.Errorf("BG min units[%d] = %d, want 1", r, u)
		}
	}

	light, err := c.Solo("memcached", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !light.LC || !light.Feasible {
		t.Fatalf("light memcached solo = %+v, want feasible LC", light)
	}
	heavy, err := c.Solo("memcached", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !heavy.Feasible {
		t.Fatal("90% memcached must be feasible alone (it is below the knee)")
	}
	for r := range light.MinUnits {
		if heavy.MinUnits[r] < light.MinUnits[r] {
			t.Errorf("resource %d: heavier load needs fewer units (%d < %d)",
				r, heavy.MinUnits[r], light.MinUnits[r])
		}
	}

	hopeless, err := c.Solo("memcached", 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if hopeless.Feasible {
		t.Error("140% of the knee must be solo-infeasible")
	}

	if _, err := c.Solo("not-a-workload", 0.2); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestAdmissiblePrefilter(t *testing.T) {
	c := NewCache(resource.Default())

	ok, err := c.Admissible([]Job{{"memcached", 0.2}, {"swaptions", 0}})
	if err != nil || !ok {
		t.Fatalf("light mix rejected: ok=%v err=%v", ok, err)
	}
	// A solo-infeasible job poisons any mix.
	ok, err = c.Admissible([]Job{{"memcached", 1.4}})
	if err != nil || ok {
		t.Fatalf("hopeless job admitted: ok=%v err=%v", ok, err)
	}
	// Four near-saturation memcacheds cannot sum under capacity.
	four := []Job{{"memcached", 0.9}, {"memcached", 0.9}, {"memcached", 0.9}, {"memcached", 0.9}}
	ok, err = c.Admissible(four)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("four 90% memcacheds passed the capacity bound")
	}
	// More jobs than units of some resource is structurally infeasible.
	var dozen []Job
	for i := 0; i < 12; i++ {
		dozen = append(dozen, Job{Workload: "swaptions"})
	}
	ok, err = c.Admissible(dozen)
	if err != nil || ok {
		t.Errorf("12 jobs on an 11-way LLC admitted: ok=%v err=%v", ok, err)
	}
}

func TestCacheConcurrentUse(t *testing.T) {
	topo := resource.Small()
	c := NewCache(topo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				jobs := []Job{{Workload: fmt.Sprintf("w%d", i%5), Load: 0.2}}
				c.Store(&Entry{Jobs: jobs, Feasible: true, Result: resultWithBest(topo, 1, 0.8)})
				c.Lookup(Key(jobs))
				c.LookupNear(jobs, NearTolerance)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 5 {
		t.Errorf("Len = %d, want 5 distinct keys", c.Len())
	}
}

// TestCacheShardedFirstWriteWins races several scheduler shards
// against one shared cache, all profiling the same five mixes with
// shard-stamped scores. Exactly one shard may win each key, every
// concurrent Lookup/LookupNear hit must already show the eventual
// winner (a stored entry is never replaced), and the journal must
// list each winner exactly once. make race runs this under -race.
func TestCacheShardedFirstWriteWins(t *testing.T) {
	topo := resource.Small()
	hub := NewCache(topo)
	const shards, mixes = 6, 5
	wins := make([]map[string]bool, shards)
	seen := make([]map[string]float64, shards) // key -> score observed via lookups
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			wins[s] = map[string]bool{}
			seen[s] = map[string]float64{}
			for i := 0; i < 40; i++ {
				jobs := []Job{{Workload: fmt.Sprintf("mix%d", i%mixes), Load: 0.2}}
				e := &Entry{Jobs: jobs, Feasible: true,
					Result: resultWithBest(topo, 1, 0.6+float64(s)/100)}
				if hub.Store(e) {
					wins[s][e.Key] = true
				}
				if got, ok := hub.Lookup(Key(jobs)); ok {
					if prev, dup := seen[s][got.Key]; dup && prev != got.Result.BestScore {
						t.Errorf("shard %d saw key %s flip score %v -> %v", s, got.Key, prev, got.Result.BestScore)
					}
					seen[s][got.Key] = got.Result.BestScore
				}
				if got, ok := hub.LookupNear(jobs, NearTolerance); ok {
					if prev, dup := seen[s][got.Key]; dup && prev != got.Result.BestScore {
						t.Errorf("shard %d saw key %s flip score %v -> %v", s, got.Key, prev, got.Result.BestScore)
					}
					seen[s][got.Key] = got.Result.BestScore
				}
			}
		}(s)
	}
	wg.Wait()
	if hub.Len() != mixes {
		t.Fatalf("Len = %d, want %d distinct keys", hub.Len(), mixes)
	}
	// Exactly one shard won each key, and the committed entry carries
	// that shard's stamp.
	winners := map[string]float64{}
	for s, w := range wins {
		for key := range w {
			if _, taken := winners[key]; taken {
				t.Errorf("key %s reported two winning stores", key)
			}
			winners[key] = 0.6 + float64(s)/100
		}
	}
	if len(winners) != mixes {
		t.Fatalf("winning stores cover %d keys, want %d", len(winners), mixes)
	}
	for key, score := range winners {
		got, ok := hub.Lookup(key)
		if !ok || got.Result.BestScore != score {
			t.Errorf("key %s: committed score %v, want winning shard's %v", key, got.Result.BestScore, score)
		}
	}
	// Every lookup hit observed the final winner — first write wins
	// means no shard ever saw a value that was later replaced.
	for s, m := range seen {
		for key, score := range m {
			if score != winners[key] {
				t.Errorf("shard %d observed %v for %s, final winner is %v", s, score, key, winners[key])
			}
		}
	}
	// The journal lists each winner exactly once, in Store order.
	entries, mark := hub.EntriesSince(0)
	if mark != mixes || len(entries) != mixes {
		t.Fatalf("journal has %d entries (mark %d), want %d", len(entries), mark, mixes)
	}
	counts := map[string]int{}
	for _, e := range entries {
		counts[e.Key]++
	}
	for key := range winners {
		if counts[key] != 1 {
			t.Errorf("journal lists %s %d times, want once", key, counts[key])
		}
	}
}

// TestOverlaySyncAcrossShards follows the fleet's barrier protocol:
// shards profile into private overlays concurrently, then a
// sequential barrier lifts each overlay's new journal entries into
// the shared hub and pushes the hub's union back down. Each shard
// profiles its own mixes plus one contended mix everyone screens. The
// hub keeps the first-synced entry for the contended mix, overlays
// adopt every mix they didn't profile themselves, and adopted entries
// never echo back up on the next barrier.
func TestOverlaySyncAcrossShards(t *testing.T) {
	topo := resource.Small()
	hub := NewCache(topo)
	const shards = 4
	overlays := make([]*Cache, shards)
	marks := make([]int, shards)
	for s := range overlays {
		overlays[s] = NewOverlay(hub)
	}
	ownJobs := func(s int) []Job { return []Job{{Workload: fmt.Sprintf("own%d", s), Load: 0.4}} }
	contended := []Job{{Workload: "contended", Load: 0.4}}
	// Concurrent epoch work: each shard profiles its own mix and the
	// contended one, stamping its id into the score.
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			score := 0.6 + float64(s)/100
			overlays[s].Store(&Entry{Jobs: ownJobs(s), Feasible: true,
				Result: resultWithBest(topo, 1, score)})
			overlays[s].Store(&Entry{Jobs: contended, Feasible: true,
				Result: resultWithBest(topo, 1, score)})
			overlays[s].LookupNear(contended, NearTolerance)
		}(s)
	}
	wg.Wait()
	// Sequential barrier, in shard order: up to the hub, then the
	// union back down. Adopted entries bump the local mark so they
	// never echo back, mirroring internal/fleet's barrier.
	hubMark := 0
	for s := range overlays {
		entries, mark := overlays[s].EntriesSince(marks[s])
		marks[s] = mark
		for _, e := range entries {
			hub.Store(e)
		}
	}
	var fresh []*Entry
	fresh, hubMark = hub.EntriesSince(hubMark)
	for s := range overlays {
		for _, e := range fresh {
			if overlays[s].Store(e) {
				marks[s]++
			}
		}
	}
	wantLen := shards + 1 // one mix per shard plus the contended one
	if hubMark != wantLen || hub.Len() != wantLen {
		t.Fatalf("hub has %d entries (mark %d), want %d", hub.Len(), hubMark, wantLen)
	}
	// The hub kept shard 0's contended entry (first synced, in shard
	// order); each overlay keeps the version it profiled itself —
	// first write wins locally too — and everyone adopted every
	// foreign mix verbatim.
	if got, ok := hub.Lookup(Key(contended)); !ok || got.Result.BestScore != 0.6 {
		t.Fatalf("hub contended entry = %+v, want shard 0's", got)
	}
	for s := range overlays {
		if overlays[s].Len() != wantLen {
			t.Errorf("overlay %d has %d entries, want %d", s, overlays[s].Len(), wantLen)
		}
		if got, ok := overlays[s].Lookup(Key(contended)); !ok || got.Result.BestScore != 0.6+float64(s)/100 {
			t.Errorf("overlay %d contended entry = %+v, want its own", s, got)
		}
		for o := 0; o < shards; o++ {
			got, ok := overlays[s].Lookup(Key(ownJobs(o)))
			if !ok || got.Result.BestScore != 0.6+float64(o)/100 {
				t.Errorf("overlay %d missing shard %d's mix: %+v", s, o, got)
			}
		}
	}
	// A second barrier pass is a no-op: marks advanced past adopted
	// entries, so nothing echoes back up.
	for s := range overlays {
		entries, mark := overlays[s].EntriesSince(marks[s])
		marks[s] = mark
		if len(entries) != 0 {
			t.Errorf("overlay %d echoed %d adopted entries back to the hub", s, len(entries))
		}
	}
}
