package profile

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"clite/internal/core"
	"clite/internal/resource"
)

func TestKeyIsOrderInsensitive(t *testing.T) {
	a := Key([]Job{{"memcached", 0.4}, {"img-dnn", 0.2}, {"swaptions", 0}})
	b := Key([]Job{{"swaptions", 0}, {"img-dnn", 0.2}, {"memcached", 0.4}})
	if a != b {
		t.Errorf("keys diverge on request order: %q vs %q", a, b)
	}
	if a != "img-dnn@0.20|memcached@0.40|swaptions" {
		t.Errorf("unexpected canonical key %q", a)
	}
}

func TestKeyQuantizesLoads(t *testing.T) {
	a := Key([]Job{{"memcached", 0.41}})
	b := Key([]Job{{"memcached", 0.39}})
	c := Key([]Job{{"memcached", 0.33}})
	if a != b {
		t.Errorf("0.41 and 0.39 should share the 0.40 bucket: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("0.41 and 0.33 should land in different buckets: both %q", a)
	}
}

func TestKeyDistinguishesDuplicateLoads(t *testing.T) {
	one := Key([]Job{{"memcached", 0.2}})
	two := Key([]Job{{"memcached", 0.2}, {"memcached", 0.2}})
	if one == two {
		t.Error("one and two copies of the same job must not collide")
	}
}

func resultWithBest(topo resource.Topology, nJobs int, score float64) core.Result {
	cfg := resource.EqualSplit(topo, nJobs)
	return core.Result{
		Best:        cfg,
		BestScore:   score,
		QoSMeetable: score > 0.5,
		History:     []core.Step{{Config: cfg, Score: score}},
	}
}

func TestStoreFirstWriteWins(t *testing.T) {
	c := NewCache(resource.Small())
	jobs := []Job{{"memcached", 0.2}}
	e1 := &Entry{Jobs: jobs, Feasible: true, Result: resultWithBest(resource.Small(), 1, 0.9)}
	e2 := &Entry{Jobs: jobs, Feasible: false}
	if !c.Store(e1) {
		t.Fatal("first store must succeed")
	}
	if c.Store(e2) {
		t.Error("second store of the same key must be a no-op")
	}
	got, ok := c.Lookup(Key(jobs))
	if !ok || !got.Feasible {
		t.Fatalf("lookup returned %+v, want the first entry", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	st := c.Stats()
	if st.Stores != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 store and 1 hit", st)
	}
}

func TestLookupNearFindsClosestFeasibleDonor(t *testing.T) {
	topo := resource.Small()
	c := NewCache(topo)
	mk := func(load float64, feasible bool) *Entry {
		return &Entry{
			Jobs:     []Job{{"memcached", load}, {"swaptions", 0}},
			Feasible: feasible,
			Result:   resultWithBest(topo, 2, 0.9),
		}
	}
	c.Store(mk(0.40, true))
	c.Store(mk(0.30, true))
	c.Store(mk(0.25, false)) // closest, but infeasible: must not donate

	probe := []Job{{"memcached", 0.25}, {"swaptions", 0}}
	e, ok := c.LookupNear(probe, NearTolerance)
	if !ok {
		t.Fatal("expected a near hit")
	}
	near := func(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
	if !near(e.Jobs[0].Load, 0.30) {
		t.Errorf("donor load = %.2f, want the closest feasible 0.30", e.Jobs[0].Load)
	}

	// Exact-key entries never count as near donors.
	c.Store(mk(0.25, true))
	e, ok = c.LookupNear(probe, NearTolerance)
	if !ok || !near(e.Jobs[0].Load, 0.30) {
		t.Errorf("exact key leaked into the near lookup: %+v", e)
	}

	// Different workload multisets never match.
	if _, ok := c.LookupNear([]Job{{"img-dnn", 0.30}, {"swaptions", 0}}, NearTolerance); ok {
		t.Error("near lookup crossed workload multisets")
	}
	// Beyond tolerance is a miss.
	if _, ok := c.LookupNear([]Job{{"memcached", 0.60}, {"swaptions", 0}}, NearTolerance); ok {
		t.Error("near lookup exceeded tolerance")
	}
}

func TestSeedsFromResultRanksAndDedups(t *testing.T) {
	topo := resource.Small()
	best := resource.EqualSplit(topo, 2)
	alt := resource.Extremum(topo, 2, 0)
	alt2 := resource.Extremum(topo, 2, 1)
	res := core.Result{
		Best: best,
		History: []core.Step{
			{Config: alt, Score: 0.7},
			{Config: best, Score: 0.9}, // duplicate of Best: dropped
			{Config: alt2, Score: 0.8},
			{Config: alt, Score: 0.6, Discarded: true}, // unusable: ignored
		},
	}
	seeds := SeedsFromResult(res)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want 3: %v", len(seeds), seeds)
	}
	if !seeds[0].Equal(best) {
		t.Error("best configuration must seed first")
	}
	if !seeds[1].Equal(alt2) || !seeds[2].Equal(alt) {
		t.Errorf("runners-up out of score order: %v", seeds[1:])
	}
	e := &Entry{Jobs: []Job{{"a", 0.1}, {"b", 0.1}}, Seeds: seeds}
	if got := e.SeedsFor(2); len(got) != 3 {
		t.Errorf("SeedsFor(2) = %d seeds, want 3", len(got))
	}
	if got := e.SeedsFor(3); len(got) != 0 {
		t.Errorf("SeedsFor(3) = %d seeds, want 0 (job count mismatch)", len(got))
	}
}

func TestSoloProfileShapes(t *testing.T) {
	c := NewCache(resource.Default())

	bg, err := c.Solo("swaptions", 0)
	if err != nil {
		t.Fatal(err)
	}
	if bg.LC || !bg.Feasible {
		t.Errorf("BG solo profile = %+v, want feasible non-LC", bg)
	}
	for r, u := range bg.MinUnits {
		if u != 1 {
			t.Errorf("BG min units[%d] = %d, want 1", r, u)
		}
	}

	light, err := c.Solo("memcached", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !light.LC || !light.Feasible {
		t.Fatalf("light memcached solo = %+v, want feasible LC", light)
	}
	heavy, err := c.Solo("memcached", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !heavy.Feasible {
		t.Fatal("90% memcached must be feasible alone (it is below the knee)")
	}
	for r := range light.MinUnits {
		if heavy.MinUnits[r] < light.MinUnits[r] {
			t.Errorf("resource %d: heavier load needs fewer units (%d < %d)",
				r, heavy.MinUnits[r], light.MinUnits[r])
		}
	}

	hopeless, err := c.Solo("memcached", 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if hopeless.Feasible {
		t.Error("140% of the knee must be solo-infeasible")
	}

	if _, err := c.Solo("not-a-workload", 0.2); err == nil {
		t.Error("unknown workload must error")
	}
}

func TestAdmissiblePrefilter(t *testing.T) {
	c := NewCache(resource.Default())

	ok, err := c.Admissible([]Job{{"memcached", 0.2}, {"swaptions", 0}})
	if err != nil || !ok {
		t.Fatalf("light mix rejected: ok=%v err=%v", ok, err)
	}
	// A solo-infeasible job poisons any mix.
	ok, err = c.Admissible([]Job{{"memcached", 1.4}})
	if err != nil || ok {
		t.Fatalf("hopeless job admitted: ok=%v err=%v", ok, err)
	}
	// Four near-saturation memcacheds cannot sum under capacity.
	four := []Job{{"memcached", 0.9}, {"memcached", 0.9}, {"memcached", 0.9}, {"memcached", 0.9}}
	ok, err = c.Admissible(four)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("four 90% memcacheds passed the capacity bound")
	}
	// More jobs than units of some resource is structurally infeasible.
	var dozen []Job
	for i := 0; i < 12; i++ {
		dozen = append(dozen, Job{Workload: "swaptions"})
	}
	ok, err = c.Admissible(dozen)
	if err != nil || ok {
		t.Errorf("12 jobs on an 11-way LLC admitted: ok=%v err=%v", ok, err)
	}
}

func TestCacheConcurrentUse(t *testing.T) {
	topo := resource.Small()
	c := NewCache(topo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				jobs := []Job{{Workload: fmt.Sprintf("w%d", i%5), Load: 0.2}}
				c.Store(&Entry{Jobs: jobs, Feasible: true, Result: resultWithBest(topo, 1, 0.8)})
				c.Lookup(Key(jobs))
				c.LookupNear(jobs, NearTolerance)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 5 {
		t.Errorf("Len = %d, want 5 distinct keys", c.Len())
	}
}
