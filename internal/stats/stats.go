// Package stats provides the statistical plumbing shared by the CLITE
// simulator and optimizer: deterministic random-number streams,
// standard-normal density functions, percentile estimation, and
// summary statistics.
//
// Everything in this package is allocation-light and uses only the
// standard library, because it sits on the hot path of both the
// tail-latency simulator and the Bayesian-optimization engine.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when fewer than
// two samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoefficientOfVariation returns the standard deviation expressed as a
// fraction of the mean. It is the paper's Fig. 11 variability metric.
// It returns 0 when the mean is 0.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(m)
}

// GeoMean returns the geometric mean of xs. Non-positive entries clamp
// to a tiny positive value so that a single zero term does not erase
// all signal; the CLITE score function relies on this to stay smooth.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const floor = 1e-12
	var logSum float64
	for _, x := range xs {
		if x < floor {
			x = floor
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using
// linear interpolation between closest ranks. The input is not
// modified. An empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for an already ascending-sorted slice,
// avoiding the copy and sort on hot paths.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// NormPDF is the probability density of the standard normal
// distribution at z.
func NormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// NormCDF is the cumulative distribution of the standard normal
// distribution at z.
func NormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Clamp restricts x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
