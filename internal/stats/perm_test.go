package stats

import "testing"

// TestPermIntoMatchesPerm pins PermInto to Perm: identical draw
// sequence, identical permutation, reused storage.
func TestPermIntoMatchesPerm(t *testing.T) {
	a, b := NewRNG(3), NewRNG(3)
	var buf []int
	for i := 0; i < 50; i++ {
		n := 1 + i%7
		want := a.Perm(n)
		buf = b.PermInto(n, buf)
		if len(buf) != len(want) {
			t.Fatalf("n=%d: length %d vs %d", n, len(buf), len(want))
		}
		for k := range want {
			if buf[k] != want[k] {
				t.Fatalf("n=%d draw %d: %v vs %v", n, i, buf, want)
			}
		}
	}
}
