package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 2.0 / 5.0
	if got := CoefficientOfVariation(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("CoV = %v, want %v", got, want)
	}
	if got := CoefficientOfVariation([]float64{0, 0}); got != 0 {
		t.Errorf("CoV of zeros = %v, want 0", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEqual(got, 4, 1e-9) {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	// A zero term must not collapse the result to exactly zero.
	if got := GeoMean([]float64{0, 1, 1}); got <= 0 {
		t.Errorf("GeoMean with zero term = %v, want > 0", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %v, want -2", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty slices should be +/-Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {95, 4.8},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	// Percentile must not mutate its input.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 := float64(a % 101) // 0..100
		p2 := float64(b % 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileBoundedByExtremesProperty(t *testing.T) {
	f := func(raw []float64, a uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := Percentile(xs, float64(a%101))
		return p >= Min(xs)-1e-9 && p <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormPDFCDF(t *testing.T) {
	if got := NormCDF(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("NormCDF(0) = %v, want 0.5", got)
	}
	if got := NormCDF(1.6448536269514722); !almostEqual(got, 0.95, 1e-9) {
		t.Errorf("NormCDF(z95) = %v, want 0.95", got)
	}
	if got := NormPDF(0); !almostEqual(got, 0.3989422804014327, 1e-12) {
		t.Errorf("NormPDF(0) = %v", got)
	}
	// Symmetry.
	for _, z := range []float64{0.3, 1.1, 2.7} {
		if !almostEqual(NormCDF(-z), 1-NormCDF(z), 1e-12) {
			t.Errorf("CDF not symmetric at %v", z)
		}
		if !almostEqual(NormPDF(-z), NormPDF(z), 1e-15) {
			t.Errorf("PDF not symmetric at %v", z)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp mid = %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should give identical streams")
		}
	}
	c := NewRNG(42).Split(1)
	d := NewRNG(42).Split(2)
	if c.Float64() == d.Float64() {
		t.Error("different split labels should give different streams")
	}
}

func TestRNGExponentialMean(t *testing.T) {
	g := NewRNG(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Exponential(2.5)
	}
	if got := sum / n; !almostEqual(got, 2.5, 0.05) {
		t.Errorf("Exponential mean = %v, want ~2.5", got)
	}
}

func TestRNGPoissonMean(t *testing.T) {
	g := NewRNG(11)
	for _, lambda := range []float64{0.5, 4, 40, 800} {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(g.Poisson(lambda))
		}
		got := sum / n
		if math.Abs(got-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, got)
		}
	}
	if got := NewRNG(1).Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %v, want 0", got)
	}
}

func TestRNGLogNormalFactorMeanOne(t *testing.T) {
	g := NewRNG(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		f := g.LogNormalFactor(0.2)
		if f <= 0 {
			t.Fatal("noise factor must be positive")
		}
		sum += f
	}
	if got := sum / n; !almostEqual(got, 1.0, 0.01) {
		t.Errorf("LogNormalFactor mean = %v, want ~1", got)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	g := NewRNG(17)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := g.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if !almostEqual(mean, 3, 0.05) {
		t.Errorf("Normal mean = %v", mean)
	}
	if !almostEqual(variance, 4, 0.15) {
		t.Errorf("Normal variance = %v", variance)
	}
}
