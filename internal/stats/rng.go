package stats

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. Every simulator component
// (each job's arrival process, each policy's stochastic choices) owns
// its own RNG split off a root seed, so experiments are reproducible
// and components do not perturb each other's streams when code changes.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream. The label decorrelates
// children split from the same parent at different call sites.
func (g *RNG) Split(label int64) *RNG {
	// SplitMix64-style finalizer over (next, label) gives well-spread
	// child seeds even for small labels.
	z := uint64(g.r.Int63()) ^ (uint64(label) * 0x9E3779B97F4A7C15)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// PermInto is Perm writing into a reused buffer. It performs
// math/rand's exact insertion shuffle (same draw sequence, same
// permutation), so it can replace Perm in hot loops without touching
// the stream.
func (g *RNG) PermInto(n int, buf []int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	m := buf[:n]
	// math/rand's loop starts at i = 0 — the first iteration is a
	// no-op swap but consumes an Intn(1) draw, and the stream must
	// match draw for draw.
	for i := 0; i < n; i++ {
		j := g.r.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m
}

// Normal returns a sample from N(mu, sigma²).
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// Exponential returns a sample from an exponential distribution with
// the given mean (not rate).
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// LogNormalFactor returns a multiplicative noise factor whose log is
// N(-sigma²/2, sigma²), i.e. the factor has mean 1. The tail-latency
// simulator uses it for measurement noise that can never go negative.
func (g *RNG) LogNormalFactor(sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma - sigma*sigma/2)
}

// Poisson returns a Poisson(lambda) sample. It uses Knuth's method for
// small lambda and a normal approximation above 500, which is far more
// arrivals per observation window than the simulator ever counts per
// step.
func (g *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		n := g.Normal(lambda, math.Sqrt(lambda))
		if n < 0 {
			return 0
		}
		return int(n + 0.5)
	}
	limit := math.Exp(-lambda)
	p := 1.0
	k := 0
	for p > limit {
		p *= g.r.Float64()
		k++
	}
	return k - 1
}
