package core

// This file is the hardening layer that lets the controller survive an
// unreliable observation substrate (internal/faults, or a real
// deployment's monitoring stack). Four mechanisms, all in simulated
// time and all recorded in the Result history:
//
//   - bounded retry with exponential backoff on transient observation
//     errors (a failed counter read costs its window; the controller
//     idles a growing number of windows before retrying);
//   - median-of-k re-measurement when a window's Eq. 3 score is a
//     statistical outlier versus what nearby sampled configurations
//     scored — a nearest-neighbour stand-in for the GP posterior,
//     which lives inside internal/bo and is not visible here;
//   - a last-known-safe-partition fallback: when the retry budget is
//     exhausted mid-search, the best previously QoS-meeting
//     configuration is returned instead of an error;
//   - a final guard pass that re-observes the best configuration (and,
//     if it fails QoS, the runners-up) before it is returned, so a
//     lucky corrupted window cannot become the answer;
//   - a derailment-recovery restart: corrupted windows early in the
//     search can steer the acquisition function away from a thin
//     feasible region for the rest of the budget, so a resilient run
//     that ends with no QoS-meeting window (and no infeasibility
//     verdict) restarts the search under a derived seed, up to
//     salvageRestarts times, keeping the full accumulated history.
//
// Everything here is gated on Resilience.Enabled: switched off, the
// controller's observation sequence is byte-identical to the baseline.

import (
	"errors"
	"math"
	"sort"

	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/telemetry"
)

// Resilience tunes the hardening. The zero value disables it; setting
// Enabled with everything else zero selects the defaults in brackets.
type Resilience struct {
	// Enabled turns hardening on.
	Enabled bool
	// MaxRetries bounds the retries after a transiently failed window
	// before the measurement is abandoned [3].
	MaxRetries int
	// BackoffWindows is the idle wait before the first retry, in units
	// of the observation window; it doubles per retry [1].
	BackoffWindows float64
	// RemeasureK is the median-of-k re-measurement width for windows
	// flagged as outliers, and the vote width when confirming an
	// infeasibility verdict [3].
	RemeasureK int
	// OutlierDrop is how far (in absolute Eq. 3 score) a window must
	// undershoot the score of the nearest previously sampled
	// configuration to be treated as a suspected outlier [0.25].
	OutlierDrop float64
	// NeighborRadius bounds how close — in normalized allocation
	// space — the nearest sample must be for its score to serve as the
	// outlier baseline [0.3].
	NeighborRadius float64
	// DisableGuard skips the final re-observation of the returned
	// configuration.
	DisableGuard bool
}

func (r Resilience) maxRetries() int {
	if r.MaxRetries > 0 {
		return r.MaxRetries
	}
	return 3
}

func (r Resilience) backoffWindows() float64 {
	if r.BackoffWindows > 0 {
		return r.BackoffWindows
	}
	return 1
}

func (r Resilience) remeasureK() int {
	if r.RemeasureK > 1 {
		return r.RemeasureK
	}
	return 3
}

func (r Resilience) outlierDrop() float64 {
	if r.OutlierDrop > 0 {
		return r.OutlierDrop
	}
	return 0.25
}

func (r Resilience) neighborRadius() float64 {
	if r.NeighborRadius > 0 {
		return r.NeighborRadius
	}
	return 0.3
}

// guardBudget caps how many candidate configurations the final guard
// pass may re-observe.
const guardBudget = 3

// salvageRestarts bounds the derailment-recovery restarts of a
// resilient search that found no QoS-meeting window.
const salvageRestarts = 2

// runtime owns one Run's measurement bookkeeping: the full window
// trace (failed and discarded windows included), the retry counter,
// and the successful samples the outlier detector compares against.
type runtime struct {
	m       server.Observer
	opts    Resilience
	jobs    []server.Job
	topo    resource.Topology
	history []Step
	retries int
	// trace receives ResilienceAction events (nil when tracing is off;
	// the nil Tracer discards emits).
	trace *telemetry.Tracer
	// points are the successful measurements (normalized allocation
	// vector + score) backing nearest-neighbour outlier detection.
	points []scoredPoint
}

type scoredPoint struct {
	x     []float64
	score float64
}

func (rt *runtime) resilient() bool { return rt.opts.Enabled }

// result snapshots the trace into a Result.
func (rt *runtime) result() Result {
	res := resultFromHistory(rt.history)
	res.Retries = rt.retries
	return res
}

// refresh re-syncs a Result's trace-derived fields after the guard
// pass appended further windows.
func (rt *runtime) refresh(res *Result) {
	res.History = rt.history
	res.SamplesUsed = len(rt.history)
	res.Attempts = len(rt.history)
	res.Retries = rt.retries
}

// canFallBack reports whether the error that aborted the search admits
// the last-known-safe fallback: resilience is on, the error is an
// observation failure (transient budget exhausted, or node loss), and
// some usable window met every QoS target.
func (rt *runtime) canFallBack(err error) bool {
	if !rt.resilient() {
		return false
	}
	if !errors.Is(err, server.ErrObservationFailed) && !errors.Is(err, server.ErrNodeFailed) {
		return false
	}
	return rt.hasFeasible()
}

// hasFeasible reports whether any usable window met every QoS target.
func (rt *runtime) hasFeasible() bool {
	for _, s := range rt.history {
		if s.Usable() && s.Obs.AllQoSMet {
			return true
		}
	}
	return false
}

// measure runs one logical measurement of cfg: a plain single window
// without resilience; with it, retry-with-backoff plus outlier
// screening and median-of-k re-measurement.
func (rt *runtime) measure(cfg resource.Config) (server.Observation, float64, error) {
	if !rt.resilient() {
		obs, err := rt.m.Observe(cfg)
		if err != nil {
			return server.Observation{}, 0, err
		}
		score := ScoreObservation(rt.jobs, obs)
		rt.history = append(rt.history, Step{Config: cfg.Clone(), Score: score, Obs: obs})
		return obs, score, nil
	}
	obs, score, err := rt.attempt(cfg)
	if err != nil {
		return server.Observation{}, 0, err
	}
	if rt.isOutlier(cfg, score) {
		obs, score = rt.remeasure(cfg, obs, score)
	}
	rt.points = append(rt.points, scoredPoint{x: rt.normalize(cfg), score: score})
	return obs, score, nil
}

// attempt observes cfg with bounded retry and exponential backoff (in
// simulated windows). Every attempt — failed or not — lands in the
// history. Node failure is permanent and aborts immediately.
func (rt *runtime) attempt(cfg resource.Config) (server.Observation, float64, error) {
	backoff := rt.opts.backoffWindows()
	var lastErr error
	for try := 0; try <= rt.opts.maxRetries(); try++ {
		if try > 0 {
			rt.retries++
			rt.trace.Emit(telemetry.ResilienceAction("retry", try))
			rt.m.AdvanceClock(backoff * rt.m.Window())
			backoff *= 2
		}
		obs, err := rt.m.Observe(cfg)
		if err == nil {
			score := ScoreObservation(rt.jobs, obs)
			rt.history = append(rt.history, Step{Config: cfg.Clone(), Score: score, Obs: obs, Attempt: try})
			return obs, score, nil
		}
		rt.history = append(rt.history, Step{Config: cfg.Clone(), Failed: true, Err: err.Error(), Attempt: try})
		lastErr = err
		if errors.Is(err, server.ErrNodeFailed) {
			break
		}
	}
	return server.Observation{}, 0, lastErr
}

// isOutlier flags a score that undershoots the nearest previously
// sampled configuration's score by more than the configured drop. The
// nearest successful sample is the cheap stand-in for the GP
// posterior's prediction at cfg: close configurations score close on
// this substrate, so a huge undershoot right next to a known-good
// point smells like a corrupted window, not a real measurement.
func (rt *runtime) isOutlier(cfg resource.Config, score float64) bool {
	x := rt.normalize(cfg)
	nearest, dist := math.NaN(), math.Inf(1)
	for _, p := range rt.points {
		if d := rmsDist(x, p.x); d < dist {
			dist = d
			nearest = p.score
		}
	}
	if math.IsNaN(nearest) || dist > rt.opts.neighborRadius() {
		return false
	}
	return nearest-score > rt.opts.outlierDrop()
}

// remeasure replays the suspected-outlier window to median-of-k: the
// same configuration is observed k-1 more times and the median-score
// window wins; the others stay in the history marked Discarded.
func (rt *runtime) remeasure(cfg resource.Config, firstObs server.Observation, firstScore float64) (server.Observation, float64) {
	type sample struct {
		obs   server.Observation
		score float64
		idx   int // history index of the successful window
	}
	k := rt.opts.remeasureK()
	rt.trace.Emit(telemetry.ResilienceAction("remeasure", k))
	samples := []sample{{firstObs, firstScore, len(rt.history) - 1}}
	for len(samples) < k {
		rt.retries++
		obs, score, err := rt.attempt(cfg)
		if err != nil {
			break // take the median of what we have
		}
		samples = append(samples, sample{obs, score, len(rt.history) - 1})
	}
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].score < samples[j].score })
	med := samples[len(samples)/2]
	for _, s := range samples {
		if s.idx != med.idx {
			rt.history[s.idx].Discarded = true
		}
	}
	return med.obs, med.score
}

// confirmViolation re-measures a bootstrap-extremum window that showed
// a QoS violation before the violation becomes an infeasibility
// verdict: ejecting a job to another node (Sec. 4) on the word of one
// possibly-corrupted window would be exactly the fragility this layer
// exists to remove. The verdict stands only if a majority of k windows
// agree. Without resilience the single window is trusted, as before.
func (rt *runtime) confirmViolation(cfg resource.Config, job int, obs server.Observation, score float64) (bool, server.Observation, float64) {
	if !rt.resilient() {
		return true, obs, score
	}
	k := rt.opts.remeasureK()
	rt.trace.Emit(telemetry.ResilienceAction("confirm-violation", k))
	violations, votes := 1, 1
	bestObs, bestScore := obs, score
	for votes < k {
		rt.retries++
		o, s, err := rt.attempt(cfg)
		if err != nil {
			break
		}
		votes++
		if !o.QoSMet[job] {
			violations++
		} else if s > bestScore {
			bestObs, bestScore = o, s
		}
	}
	if 2*violations > votes {
		return true, obs, score
	}
	// Overruled: the violating window was the outlier. Keep the best
	// passing window and mark the violating one discarded if it still
	// backs nothing.
	return false, bestObs, bestScore
}

// guard re-observes the best configuration before it is returned, so
// the answer rests on a fresh window rather than a possibly lucky or
// corrupted historical one. If the fresh window misses QoS, up to
// guardBudget-1 runner-up configurations that previously met QoS get
// the same treatment, and the first to verify becomes the result. If
// none verifies, the original best is kept with its honest (failing)
// guard observation.
func (rt *runtime) guard(res *Result) {
	if res.Best.NumJobs() == 0 {
		return
	}
	rt.trace.Emit(telemetry.ResilienceAction("guard", guardBudget))
	var firstObs server.Observation
	var firstScore float64
	haveFirst := false
	for _, cfg := range rt.guardCandidates(res.Best) {
		obs, score, err := rt.measure(cfg)
		if err != nil {
			// The guard could not verify (node died, retries spent);
			// keep the unguarded answer rather than lose it.
			break
		}
		if !haveFirst {
			firstObs, firstScore, haveFirst = obs, score, true
		}
		if obs.AllQoSMet {
			res.Best = cfg.Clone()
			res.BestScore = score
			res.BestObs = obs
			res.QoSMeetable = true
			rt.refresh(res)
			return
		}
	}
	if haveFirst {
		res.BestScore = firstScore
		res.BestObs = firstObs
		res.QoSMeetable = firstObs.AllQoSMet
	}
	rt.refresh(res)
}

// guardCandidates orders the configurations worth verifying: the best
// first, then the highest-scoring distinct QoS-meeting alternatives.
func (rt *runtime) guardCandidates(best resource.Config) []resource.Config {
	cands := []resource.Config{best}
	seen := map[string]bool{best.Key(): true}
	idx := make([]int, 0, len(rt.history))
	for i, s := range rt.history {
		if s.Usable() && s.Obs.AllQoSMet && !seen[s.Config.Key()] {
			idx = append(idx, i)
			seen[s.Config.Key()] = true
		}
	}
	sort.SliceStable(idx, func(a, b int) bool { return rt.history[idx[a]].Score > rt.history[idx[b]].Score })
	for _, i := range idx {
		if len(cands) >= guardBudget {
			break
		}
		cands = append(cands, rt.history[i].Config)
	}
	return cands
}

// normalize maps a configuration into the unit cube the way the BO
// engine does, so neighbour distances are comparable across resources.
func (rt *runtime) normalize(cfg resource.Config) []float64 {
	v := cfg.Vector()
	nres := len(rt.topo)
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x / float64(rt.topo[i%nres].Units)
	}
	return out
}

func rmsDist(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(a)))
}
