package core

import (
	"math"

	"clite/internal/server"
)

// ScoreTerm is one job's precomputed contribution to the Eq. 3 score:
// the floored logarithms GeoMean would take of the job's clamped
// QoS ratio and normalized performance, plus the class and QoS bits
// the aggregation branches on. Because the geometric mean is a sum of
// logs, a scorer that caches per-job measurements (the ORACLE sweep)
// can also cache these terms and aggregate a whole configuration with
// a handful of additions and one Exp instead of re-taking every log —
// ScoreFromTerms is bit-identical to ScoreJobs over the same inputs
// (the log values, their summation order, and the final Exp are the
// exact operations GeoMean performs).
type ScoreTerm struct {
	LogRatio float64 // LC only: log of min(1, QoS/p95), floored at 1e-12
	LogPerf  float64 // log of clamp(normPerf, 0, 1), floored at 1e-12
	LC       bool
	QoSMet   bool
}

// geoMeanFloor mirrors the floor stats.GeoMean applies before Log.
const geoMeanFloor = 1e-12

func flooredLog(x float64) float64 {
	if x < geoMeanFloor {
		x = geoMeanFloor
	}
	return math.Log(x)
}

// MakeScoreTerm precomputes one job's score contribution from its
// noise-free measurement, exactly as ScoreJobs would derive it.
func MakeScoreTerm(job server.Job, p95 float64, qosMet bool, normPerf float64) ScoreTerm {
	perf := normPerf
	if perf < 0 {
		perf = 0
	}
	if perf > 1 {
		perf = 1
	}
	t := ScoreTerm{LogPerf: flooredLog(perf), QoSMet: qosMet}
	if job.IsLC() {
		t.LC = true
		ratio := 1.0
		if p95 > 0 {
			ratio = job.QoS / p95
		}
		if ratio > 1 {
			ratio = 1
		}
		t.LogRatio = flooredLog(ratio)
	}
	return t
}

// ScoreFromTerms aggregates precomputed per-job terms into the Eq. 3
// score. It reproduces ScoreJobs bit for bit: the per-class log sums
// accumulate in job order — the order ScoreJobs appends to its
// per-class slices — and the final Exp(sum/n) is GeoMean's closing
// operation.
func ScoreFromTerms(terms []ScoreTerm) float64 {
	var lcRatioSum, lcPerfSum, bgPerfSum float64
	var nLC, nBG int
	allMet := true
	for _, t := range terms {
		if t.LC {
			lcRatioSum += t.LogRatio
			lcPerfSum += t.LogPerf
			nLC++
			if !t.QoSMet {
				allMet = false
			}
		} else {
			bgPerfSum += t.LogPerf
			nBG++
		}
	}
	return ScoreFromSums(lcRatioSum, lcPerfSum, bgPerfSum, nLC, nBG, allMet)
}

// ScoreFromSums closes the Eq. 3 score over already-accumulated
// per-class log sums — the last step of ScoreFromTerms, exposed so a
// bulk scorer can keep whole configurations in the log domain (sums
// are monotone in the score within a QoS class, so candidates that
// don't raise the relevant sum can be skipped without ever calling
// Exp) and still produce the bit-exact ScoreJobs value when one is
// needed.
func ScoreFromSums(lcRatioSum, lcPerfSum, bgPerfSum float64, nLC, nBG int, allMet bool) float64 {
	if !allMet {
		if nLC == 0 {
			return 0 // GeoMean of an empty slice is 0
		}
		return 0.5 * math.Exp(lcRatioSum/float64(nLC))
	}
	switch {
	case nBG > 0:
		return 0.5 + 0.5*math.Exp(bgPerfSum/float64(nBG))
	case nLC > 0:
		return 0.5 + 0.5*math.Exp(lcPerfSum/float64(nLC))
	default:
		// All-BG mixes have no QoS gate; score is pure performance.
		return 1.0
	}
}
