package core

import (
	"math"
	"math/rand"
	"testing"

	"clite/internal/server"
	"clite/internal/workload"
)

// termScore runs the cached-term pipeline the ORACLE sweep uses:
// per-job MakeScoreTerm, then ScoreFromTerms (which closes through
// ScoreFromSums).
func termScore(jobs []server.Job, p95 []float64, qosMet []bool, normPerf []float64) float64 {
	terms := make([]ScoreTerm, len(jobs))
	for i, job := range jobs {
		terms[i] = MakeScoreTerm(job, p95[i], qosMet[i], normPerf[i])
	}
	return ScoreFromTerms(terms)
}

// sumScore re-aggregates the terms by hand and closes through
// ScoreFromSums directly, the log-domain form bulk scorers keep.
func sumScore(jobs []server.Job, p95 []float64, qosMet []bool, normPerf []float64) float64 {
	var lcRatioSum, lcPerfSum, bgPerfSum float64
	var nLC, nBG int
	allMet := true
	for i, job := range jobs {
		t := MakeScoreTerm(job, p95[i], qosMet[i], normPerf[i])
		if t.LC {
			lcRatioSum += t.LogRatio
			lcPerfSum += t.LogPerf
			nLC++
			if !t.QoSMet {
				allMet = false
			}
		} else {
			bgPerfSum += t.LogPerf
			nBG++
		}
	}
	return ScoreFromSums(lcRatioSum, lcPerfSum, bgPerfSum, nLC, nBG, allMet)
}

func assertBitEqual(t *testing.T, name string, want, got float64) {
	t.Helper()
	if math.Float64bits(want) != math.Float64bits(got) {
		t.Errorf("%s = %v (bits %x), ScoreJobs = %v (bits %x): cached-term score must be bit-identical",
			name, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestScoreFromTermsMatchesScoreJobs pins the contract ScoreTerm's doc
// comment claims: aggregating cached per-job terms — or their raw log
// sums — reproduces ScoreJobs bit for bit in every scoring mode. The
// ORACLE sweep's memoization is only sound under this equality.
func TestScoreFromTermsMatchesScoreJobs(t *testing.T) {
	mixed := scoreJobs()
	lcOnly := mixed[:2]
	bgOnly := mixed[2:]

	cases := []struct {
		name string
		jobs []server.Job
		p95  []float64
		norm []float64
	}{
		{"meeting, BG perf mode", mixed, []float64{0.002, 0.020, 0}, []float64{1, 1, 0.64}},
		{"one LC violating", mixed, []float64{0.008, 0.020, 0}, []float64{0.5, 1, 1}},
		{"both LC violating", mixed, []float64{0.040, 0.120, 0}, []float64{0.2, 0.1, 1}},
		{"LC only, meeting", lcOnly, []float64{0.002, 0.020}, []float64{0.9, 0.7}},
		{"LC only, violating", lcOnly, []float64{0.009, 0.020}, []float64{0.9, 0.7}},
		{"BG only", bgOnly, []float64{0}, []float64{0.8}},
		{"no jobs", nil, nil, nil},
		{"zero p95 (ratio defaults to 1)", mixed, []float64{0, 0, 0}, []float64{1, 1, 0.5}},
		{"normPerf outside [0,1] clamps", mixed, []float64{0.002, 0.020, 0}, []float64{1.7, -0.3, 2.5}},
		{"tiny perf hits the GeoMean floor", mixed, []float64{0.008, 0.020, 0}, []float64{1e-15, 1, 1e-14}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs := fakeObs(tc.jobs, tc.p95, tc.norm)
			var scratch ScoreScratch
			want := ScoreJobs(tc.jobs, tc.p95, obs.QoSMet, tc.norm, &scratch)
			assertBitEqual(t, "ScoreFromTerms", want, termScore(tc.jobs, tc.p95, obs.QoSMet, tc.norm))
			assertBitEqual(t, "ScoreFromSums", want, sumScore(tc.jobs, tc.p95, obs.QoSMet, tc.norm))
		})
	}
}

// TestScoreFromTermsMatchesScoreJobsRandom sweeps randomized job mixes
// and measurements through the same equality, including degenerate
// values (zero p95, out-of-range perf) at a fixed rate.
func TestScoreFromTermsMatchesScoreJobsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lc := workload.MustByName("memcached")
	bg := workload.MustByName("swaptions")
	var scratch ScoreScratch
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(6)
		jobs := make([]server.Job, n)
		p95 := make([]float64, n)
		norm := make([]float64, n)
		qosMet := make([]bool, n)
		for i := range jobs {
			if rng.Intn(2) == 0 {
				jobs[i] = server.Job{Workload: lc, QoS: 0.004, MaxQPS: 1000, Load: 0.5}
				p95[i] = rng.Float64() * 0.01
				if rng.Intn(10) == 0 {
					p95[i] = 0
				}
				qosMet[i] = p95[i] <= jobs[i].QoS
			} else {
				jobs[i] = server.Job{Workload: bg, IsoPerf: 100}
				qosMet[i] = true
			}
			norm[i] = rng.Float64()*2.4 - 0.2 // deliberately strays outside [0,1]
			if rng.Intn(10) == 0 {
				norm[i] = 1e-15 // below the GeoMean floor
			}
		}
		want := ScoreJobs(jobs, p95, qosMet, norm, &scratch)
		assertBitEqual(t, "ScoreFromTerms", want, termScore(jobs, p95, qosMet, norm))
		assertBitEqual(t, "ScoreFromSums", want, sumScore(jobs, p95, qosMet, norm))
	}
}
