package core

import (
	"testing"

	"clite/internal/bo"
	"clite/internal/resource"
	"clite/internal/server"
)

// TestRerunWarmStartsFromPreviousPartition checks the Fig. 16
// re-invocation path: after a load change, Rerun must seed the search
// with the previous best partition and still produce a valid result.
func TestRerunWarmStartsFromPreviousPartition(t *testing.T) {
	m := server.New(resource.Default(), server.DefaultSpec(), 3)
	mustAddLC(t, m, "img-dnn", 0.1)
	mustAddLC(t, m, "masstree", 0.1)
	mcIdx := mustAddLC(t, m, "memcached", 0.1)
	mustAddBG(t, m, "fluidanimate")

	c := New(m, Options{BO: bo.Options{Seed: 3}})
	first, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !first.QoSMeetable {
		t.Skip("initial mix unexpectedly infeasible for this seed")
	}
	if err := m.SetLoad(mcIdx, 0.3); err != nil {
		t.Fatal(err)
	}
	second, err := c.Rerun(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Best.Validate(m.Topology()); err != nil {
		t.Fatal(err)
	}
	// The previous best must be among the evaluated configurations
	// (it was injected as a bootstrap sample).
	found := false
	for _, step := range second.History {
		if step.Config.Equal(first.Best) {
			found = true
			break
		}
	}
	if !found {
		t.Error("Rerun should have evaluated the previous best partition during bootstrap")
	}
	if !second.QoSMeetable {
		t.Errorf("warm-started rerun should re-converge at the higher load (score %v)", second.BestScore)
	}
}

// TestRerunToleratesJobCountChange ensures a stale previous result
// (different job count) degrades to a cold start, not an error.
func TestRerunToleratesJobCountChange(t *testing.T) {
	m := server.New(resource.Default(), server.DefaultSpec(), 5)
	mustAddLC(t, m, "memcached", 0.2)
	mustAddBG(t, m, "swaptions")
	c := New(m, Options{BO: bo.Options{Seed: 5, MaxIterations: 8}})
	stale := Result{Best: resource.EqualSplit(m.Topology(), 4)}
	res, err := c.Rerun(stale)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesUsed == 0 {
		t.Error("rerun with stale result should still run")
	}
}
