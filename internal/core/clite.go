// Package core implements the CLITE controller itself: the Eq. 3
// score function over observation windows, infeasible-job detection
// during bootstrapping, the observe→score→refit loop driven by the
// internal/bo engine, and re-invocation on load changes (Sec. 4,
// "Putting it all together", Fig. 5).
//
// CLITE runs as a background task next to the co-located jobs: it
// proposes a resource partition, the machine enforces it with the
// isolation tools and runs a two-second observation window, the
// resulting per-job measurements are scored, and the Bayesian-
// optimization engine picks the next partition until the expected
// improvement dries up.
package core

import (
	"errors"
	"fmt"

	"clite/internal/bo"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/stats"
	"clite/internal/telemetry"
)

// Options configures a CLITE run. The zero value is the paper's
// configuration.
type Options struct {
	BO bo.Options
	// Resilience hardens the controller against observation failures,
	// corrupted measurements, and node loss (see resilience.go). The
	// zero value leaves hardening off, in which case the controller
	// behaves byte-identically to the baseline implementation.
	Resilience Resilience
	// Trace receives the run's timeline — BO iterations, observation
	// windows, QoS violations, resilience actions, termination — when
	// non-nil. It is threaded down into the BO engine and, when the
	// observer supports it, the machine. Nil disables tracing at zero
	// cost and leaves results byte-identical.
	Trace *telemetry.Tracer
	// Metrics receives counters/gauges/histograms when non-nil,
	// threaded the same way as Trace.
	Metrics *telemetry.Registry
}

// telemetrySink is implemented by observers (the simulated machine,
// the fault injector) that can publish into the telemetry layer.
type telemetrySink interface {
	SetTelemetry(*telemetry.Tracer, *telemetry.Registry)
}

// Step pairs one evaluated configuration with the observation that
// produced its score, preserving the full decision trace (Fig. 9b and
// Fig. 15b are plots over this history). Failed and retried windows
// appear in the trace too — a window that was paid for is never
// silently dropped.
type Step struct {
	Config resource.Config
	Score  float64
	Obs    server.Observation
	// Failed marks a window that returned an error instead of an
	// observation: Score is 0, Obs is the zero value, and Err carries
	// the message.
	Failed bool
	// Err is the observation error text of a failed window.
	Err string
	// Attempt is the retry ordinal of this window for its
	// configuration measurement (0 = first try).
	Attempt int
	// Discarded marks an outlier window that a median-of-k
	// re-measurement superseded; its observation stays visible here
	// but is excluded from best-configuration selection.
	Discarded bool
}

// Usable reports whether the step carries a measurement that may back
// the returned best configuration.
func (s Step) Usable() bool { return !s.Failed && !s.Discarded }

// Result is the outcome of one CLITE invocation.
type Result struct {
	// Best is the highest-scoring partition found.
	Best resource.Config
	// BestScore is its Eq. 3 score.
	BestScore float64
	// BestObs is the observation that produced BestScore.
	BestObs server.Observation
	// SamplesUsed counts evaluated configurations, bootstrap included
	// (the Fig. 15a overhead metric).
	SamplesUsed int
	// Converged reports whether the EI-drop termination rule fired.
	Converged bool
	// QoSMeetable reports whether the best configuration met every LC
	// job's QoS target.
	QoSMeetable bool
	// Infeasible lists LC jobs that missed their QoS target even with
	// the maximum possible allocation; such jobs should be scheduled
	// on another node (Sec. 4) and the search stops early.
	Infeasible []int
	// History is the full evaluation trace, failed and discarded
	// windows included.
	History []Step
	// EITrace is the acquisition maximum per iteration.
	EITrace []float64
	// Attempts counts every observation window attempted, retries,
	// re-measurements and the guard pass included. Without resilience
	// it equals SamplesUsed.
	Attempts int
	// Retries counts the windows beyond each measurement's first
	// attempt: retry-after-failure, median-of-k re-measurements, and
	// infeasibility confirmation. Always 0 without resilience.
	Retries int
	// FellBack reports that the observation retry budget was exhausted
	// (or the node died) and Best is the last known QoS-safe partition
	// rather than a converged answer.
	FellBack bool
}

// Controller is a CLITE instance bound to one machine — or to anything
// else implementing the observation contract, such as a fault
// injector wrapping a machine.
type Controller struct {
	machine server.Observer
	opts    Options
}

// New returns a controller for the machine (any server.Observer).
// When Options carries telemetry and the observer can publish into it
// (the simulated machine and the fault injector both can), the sinks
// are attached here so per-window events flow without the caller
// wiring each layer by hand.
func New(machine server.Observer, opts Options) *Controller {
	if opts.Trace != nil || opts.Metrics != nil {
		if sink, ok := machine.(telemetrySink); ok {
			sink.SetTelemetry(opts.Trace, opts.Metrics)
		}
	}
	return &Controller{machine: machine, opts: opts}
}

// Score implements Eq. 3 of the paper over one observation.
//
// If any LC job misses its QoS target, the score is at most 0.5:
// half the geometric mean of the per-LC-job min(1, target/latency)
// ratios. Once every LC job meets QoS, the score is 0.5 plus half the
// geometric mean of the BG jobs' isolation-normalized performance —
// or of the LC jobs' when no BG jobs are co-located ("NBG is simply
// replaced by NLC in this scenario").
//
// The paper's Eq. 3 writes plain products; with the per-term 1/N
// exponent (geometric mean) the score keeps the same ordering and
// optima while staying in [0, 1] for any number of jobs, which is the
// normalization property Sec. 4 asks of the score function. This
// deviation is documented in DESIGN.md.
func (c *Controller) Score(obs server.Observation) float64 {
	return ScoreObservation(c.machine.Jobs(), obs)
}

// ScoreObservation is Score for explicit job metadata.
func ScoreObservation(jobs []server.Job, obs server.Observation) float64 {
	var scratch ScoreScratch
	return ScoreJobs(jobs, obs.P95, obs.QoSMet, obs.NormPerf, &scratch)
}

// ScoreScratch holds the per-job-class buffers one Eq. 3 evaluation
// needs. Reusing one across calls makes ScoreJobs allocation-free —
// the ORACLE sweep scores hundreds of thousands of configurations per
// run. A scratch must not be shared between goroutines.
type ScoreScratch struct {
	lcRatios, bgPerf, lcPerf []float64
}

// ScoreJobs is ScoreObservation over parallel per-job slices with
// caller-owned scratch: the allocation-free form for bulk scoring.
func ScoreJobs(jobs []server.Job, p95 []float64, qosMet []bool, normPerf []float64, scratch *ScoreScratch) float64 {
	lcRatios := scratch.lcRatios[:0]
	bgPerf := scratch.bgPerf[:0]
	lcPerf := scratch.lcPerf[:0]
	allMet := true
	for i, job := range jobs {
		if job.IsLC() {
			ratio := 1.0
			if p95[i] > 0 {
				ratio = job.QoS / p95[i]
			}
			if ratio > 1 {
				ratio = 1
			}
			lcRatios = append(lcRatios, ratio)
			if !qosMet[i] {
				allMet = false
			}
			lcPerf = append(lcPerf, stats.Clamp(normPerf[i], 0, 1))
		} else {
			bgPerf = append(bgPerf, stats.Clamp(normPerf[i], 0, 1))
		}
	}
	scratch.lcRatios, scratch.bgPerf, scratch.lcPerf = lcRatios, bgPerf, lcPerf
	if !allMet {
		return 0.5 * stats.GeoMean(lcRatios)
	}
	perf := bgPerf
	if len(perf) == 0 {
		perf = lcPerf
	}
	if len(perf) == 0 {
		// All-BG mixes have no QoS gate; score is pure performance.
		return 1.0
	}
	return 0.5 + 0.5*stats.GeoMean(perf)
}

// jobPerf extracts the per-job "how well is this job doing" signal the
// dropout-copy heuristic consumes: QoS headroom for LC jobs,
// normalized throughput for BG jobs.
func jobPerf(jobs []server.Job, obs server.Observation) []float64 {
	out := make([]float64, len(jobs))
	for i, job := range jobs {
		if job.IsLC() {
			if obs.P95[i] > 0 {
				out[i] = stats.Clamp(job.QoS/obs.P95[i], 0, 2)
			}
		} else {
			out[i] = stats.Clamp(obs.NormPerf[i], 0, 2)
		}
	}
	return out
}

// infeasibleError aborts the BO loop as soon as the bootstrap proves a
// job cannot meet QoS even with everything.
type infeasibleError struct {
	job int
}

func (e infeasibleError) Error() string {
	return fmt.Sprintf("core: job %d misses QoS under maximum allocation", e.job)
}

// Rerun re-invokes the controller after a load or mix change, seeding
// the search with the previously converged partition (Sec. 4: "if the
// observed performance or the job mix changes, CLITE can be reinvoked
// to determine new optimal resource partition"). Starting from the old
// operating point lets the new search shift allocations incrementally
// instead of rediscovering the feasible region.
//
// The resilience policy — retry budget, backoff schedule, outlier
// re-measurement, guard pass — carries over unchanged from the
// original controller: a re-invocation runs under exactly the same
// fault tolerances as the run it replaces.
func (c *Controller) Rerun(prev Result) (Result, error) {
	opts := c.opts
	if prev.Best.NumJobs() == c.machine.NumJobs() {
		boCopy := opts.BO
		boCopy.ExtraBootstrap = append(append([]resource.Config(nil), boCopy.ExtraBootstrap...), prev.Best)
		opts.BO = boCopy
	}
	replay := &Controller{machine: c.machine, opts: opts}
	return replay.Run()
}

// RunWarm is the warm-start entry point: it executes one full CLITE
// invocation with the BO bootstrap replaced by the given seed
// configurations (see bo.Options.SeedConfigs). The cluster scheduler
// uses it when a co-location profile near-matches a cached one — the
// cached run's best partitions stand in for the engineered bootstrap,
// so the screen starts inside the known-feasible region instead of
// re-deriving it. With no seeds it falls back to a cold Run.
func (c *Controller) RunWarm(seeds []resource.Config) (Result, error) {
	if len(seeds) == 0 {
		return c.Run()
	}
	opts := c.opts
	boCopy := opts.BO
	boCopy.SeedConfigs = append([]resource.Config(nil), seeds...)
	opts.BO = boCopy
	warm := &Controller{machine: c.machine, opts: opts}
	return warm.Run()
}

// Run executes one full CLITE invocation: bootstrap, BO search,
// termination. The machine is left in whatever configuration was
// sampled last; callers wanting the best partition enforced should
// follow with ApplyBest.
func (c *Controller) Run() (Result, error) {
	m := c.machine
	nJobs := m.NumJobs()
	if nJobs == 0 {
		return Result{}, errors.New("core: no jobs placed on the machine")
	}
	topo := m.Topology()
	jobs := m.Jobs()

	// Map each LC job to its bootstrap extremum configuration so the
	// evaluation callback can detect "cannot meet QoS even under
	// maximum allocation" (Sec. 4) and stop wasting BO cycles.
	extremumKey := make(map[string]int, nJobs)
	if !c.opts.BO.RandomBootstrap {
		for j, job := range jobs {
			if job.IsLC() {
				extremumKey[resource.Extremum(topo, nJobs, j).Key()] = j
			}
		}
	}

	trace := c.opts.Trace
	span := trace.Begin("clite-run", -1)
	rt := &runtime{m: m, opts: c.opts.Resilience, jobs: jobs, topo: topo, trace: trace}
	eval := func(cfg resource.Config) (bo.Evaluation, error) {
		obs, score, err := rt.measure(cfg)
		if err != nil {
			return bo.Evaluation{}, err
		}
		if j, ok := extremumKey[cfg.Key()]; ok && !obs.QoSMet[j] {
			confirmed, cObs, cScore := rt.confirmViolation(cfg, j, obs, score)
			if confirmed {
				return bo.Evaluation{}, infeasibleError{job: j}
			}
			obs, score = cObs, cScore
		}
		return bo.Evaluation{Score: score, JobPerf: jobPerf(jobs, obs)}, nil
	}

	boOpts := c.opts.BO
	if boOpts.Trace == nil {
		boOpts.Trace = c.opts.Trace
	}
	if boOpts.Metrics == nil {
		boOpts.Metrics = c.opts.Metrics
	}
	var boRes bo.Result
	var err error
	var eiTrace []float64
	for restart := 0; ; restart++ {
		boRes, err = bo.Run(topo, nJobs, eval, boOpts)
		var infeasible infeasibleError
		switch {
		case errors.As(err, &infeasible):
			res := rt.result()
			res.Infeasible = []int{infeasible.job}
			trace.Emit(telemetry.Termination("infeasible", res.SamplesUsed, res.BestScore))
			trace.End("clite-run", -1, span, res.SamplesUsed, false)
			return res, nil
		case err != nil && rt.canFallBack(err):
			// The retry budget is exhausted (or the node died) but a
			// QoS-meeting partition was seen: return it as the last
			// known safe answer instead of erroring.
			res := rt.result()
			res.FellBack = true
			trace.Emit(telemetry.ResilienceAction("fallback", restart))
			trace.Emit(telemetry.Termination("fallback", res.SamplesUsed, res.BestScore))
			trace.End("clite-run", -1, span, res.SamplesUsed, res.QoSMeetable)
			return res, nil
		case err != nil:
			// A transient-failure streak with nothing to fall back on
			// does not mean the node is gone; restart the search if the
			// budget allows rather than give up.
			if rt.resilient() && restart < salvageRestarts && errors.Is(err, server.ErrObservationFailed) {
				boOpts.Seed = c.opts.BO.Seed + int64(restart+1)*0x9E3779B9
				trace.Emit(telemetry.ResilienceAction("salvage-restart", restart+1))
				continue
			}
			return Result{}, err
		}
		eiTrace = append(eiTrace, boRes.EITrace...)
		if !rt.resilient() || rt.hasFeasible() || restart >= salvageRestarts {
			break
		}
		// Derailment recovery: a corrupted early window can steer the
		// acquisition away from a thin feasible region for the whole
		// budget. Restart the search from a derived seed; the spent
		// windows stay in the accumulated history.
		boOpts.Seed = c.opts.BO.Seed + int64(restart+1)*0x9E3779B9
		trace.Emit(telemetry.ResilienceAction("salvage-restart", restart+1))
	}
	res := rt.result()
	res.Converged = boRes.Converged
	res.EITrace = eiTrace
	if rt.resilient() && !c.opts.Resilience.DisableGuard {
		rt.guard(&res)
	}
	trace.End("clite-run", -1, span, res.SamplesUsed, res.QoSMeetable)
	return res, nil
}

func resultFromHistory(history []Step) Result {
	res := Result{History: history, SamplesUsed: len(history), Attempts: len(history)}
	bestIdx := -1
	for i, s := range history {
		if !s.Usable() {
			continue
		}
		if bestIdx < 0 || s.Score > history[bestIdx].Score {
			bestIdx = i
		}
	}
	if bestIdx >= 0 {
		res.Best = history[bestIdx].Config
		res.BestScore = history[bestIdx].Score
		res.BestObs = history[bestIdx].Obs
		res.QoSMeetable = history[bestIdx].Obs.AllQoSMet
	}
	return res
}

// ApplyBest re-applies the result's best partition to the machine and
// returns a fresh observation under it.
func (c *Controller) ApplyBest(res Result) (server.Observation, error) {
	if res.Best.NumJobs() == 0 {
		return server.Observation{}, errors.New("core: result has no best configuration")
	}
	return c.machine.Observe(res.Best)
}

// Monitor watches the machine under a fixed partition for the given
// number of observation windows (the Sec. 4 post-convergence phase).
// It reports true — "re-invoke CLITE" — once two consecutive windows
// show a QoS violation, which is what happens when the offered load
// shifts (Fig. 16). Requiring two windows keeps a single noisy p95
// estimate from triggering a full re-partitioning.
//
// With resilience enabled, a transiently failed window carries no
// signal: it neither counts as a violation nor resets the streak. Up
// to MaxRetries consecutive failed windows are tolerated before the
// error is surfaced; permanent node failure surfaces immediately.
func (c *Controller) Monitor(cfg resource.Config, windows int) (reinvoke bool, err error) {
	violations := 0
	failStreak := 0
	for i := 0; i < windows; i++ {
		obs, err := c.machine.Observe(cfg)
		if err != nil {
			if !c.opts.Resilience.Enabled || errors.Is(err, server.ErrNodeFailed) {
				return false, err
			}
			failStreak++
			if failStreak > c.opts.Resilience.maxRetries() {
				return false, err
			}
			continue
		}
		failStreak = 0
		if !obs.AllQoSMet {
			violations++
			if violations >= 2 {
				return true, nil
			}
		} else {
			violations = 0
		}
	}
	return false, nil
}
