package core

import (
	"testing"

	"clite/internal/bo"
	"clite/internal/resource"
	"clite/internal/server"
)

// TestRunWarmSeedsReplaceBootstrap checks the profile-cache warm-start
// path: RunWarm must evaluate the given seed partitions instead of the
// engineered bootstrap set and still converge to a valid result.
func TestRunWarmSeedsReplaceBootstrap(t *testing.T) {
	m := server.New(resource.Default(), server.DefaultSpec(), 9)
	mustAddLC(t, m, "memcached", 0.2)
	mustAddBG(t, m, "swaptions")

	c := New(m, Options{BO: bo.Options{Seed: 9}})
	cold, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !cold.QoSMeetable {
		t.Skip("cold mix unexpectedly infeasible for this seed")
	}

	warm, err := c.RunWarm([]resource.Config{cold.Best})
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.Best.Validate(m.Topology()); err != nil {
		t.Fatal(err)
	}
	if !warm.QoSMeetable {
		t.Errorf("warm run lost feasibility (score %v)", warm.BestScore)
	}
	if len(warm.History) == 0 || !warm.History[0].Config.Equal(cold.Best) {
		t.Error("seed partition must be the first evaluated configuration")
	}
	// One seed replaces the Njobs+3 engineered bootstrap samples, so
	// the warm bootstrap is strictly cheaper; the search itself may
	// still iterate, but it must not pay the full cold bootstrap again.
	if warm.SamplesUsed >= cold.SamplesUsed {
		t.Errorf("warm run used %d samples, cold used %d — no bootstrap saving",
			warm.SamplesUsed, cold.SamplesUsed)
	}
}

// TestRunWarmEmptySeedsFallsBackToCold ensures RunWarm with no seeds
// behaves exactly like Run.
func TestRunWarmEmptySeedsFallsBackToCold(t *testing.T) {
	m := server.New(resource.Default(), server.DefaultSpec(), 11)
	mustAddLC(t, m, "memcached", 0.2)
	c := New(m, Options{BO: bo.Options{Seed: 11, MaxIterations: 6}})
	a, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.RunWarm(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Best.Equal(b.Best) || a.SamplesUsed != b.SamplesUsed {
		t.Errorf("RunWarm(nil) diverged from Run: %v/%d vs %v/%d",
			a.Best, a.SamplesUsed, b.Best, b.SamplesUsed)
	}
}
