package core

import (
	"errors"
	"testing"

	"clite/internal/bo"
	"clite/internal/faults"
	"clite/internal/resource"
	"clite/internal/server"
)

// flaky wraps a machine with a scripted failure pattern: the first
// failFirst Observe calls fail transiently (the window is still
// spent), and once the simulated clock reaches failAfterClock the node
// is gone for good.
type flaky struct {
	*server.Machine
	failFirst      int
	failAfterClock float64
	calls          int
}

func (f *flaky) Observe(cfg resource.Config) (server.Observation, error) {
	f.calls++
	if f.failAfterClock != 0 && f.Machine.Clock() >= f.failAfterClock {
		return server.Observation{}, server.ErrNodeFailed
	}
	if f.calls <= f.failFirst {
		if _, err := f.Machine.Observe(cfg); err != nil {
			return server.Observation{}, err
		}
		return server.Observation{}, server.ErrObservationFailed
	}
	return f.Machine.Observe(cfg)
}

// spiky corrupts specific Observe calls (1-based) with a 20× latency
// spike on job 0, mimicking the faults injector deterministically.
type spiky struct {
	*server.Machine
	corrupt map[int]bool
	calls   int
}

func (s *spiky) Observe(cfg resource.Config) (server.Observation, error) {
	s.calls++
	obs, err := s.Machine.Observe(cfg)
	if err == nil && s.corrupt[s.calls] {
		obs.P95[0] *= 20
		obs.NormPerf[0] /= 20
		obs.QoSMet[0] = false
		obs.AllQoSMet = false
	}
	return obs, err
}

func resilientOpts(seed int64) Options {
	return Options{BO: bo.Options{Seed: seed}, Resilience: Resilience{Enabled: true}}
}

func TestResilienceOffHasNoAccountingFootprint(t *testing.T) {
	m := easyMachine(t, 21)
	res, err := New(m, Options{BO: bo.Options{Seed: 21}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 0 || res.FellBack {
		t.Errorf("baseline run must not retry or fall back: %+v", res)
	}
	if res.Attempts != res.SamplesUsed {
		t.Errorf("Attempts %d != SamplesUsed %d without resilience", res.Attempts, res.SamplesUsed)
	}
	for _, s := range res.History {
		if s.Failed || s.Discarded || s.Attempt != 0 {
			t.Fatalf("baseline history must hold only clean first-attempt windows: %+v", s)
		}
	}
}

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	m := easyMachine(t, 22)
	f := &flaky{Machine: m, failFirst: 2}
	res, err := New(f, resilientOpts(22)).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoSMeetable {
		t.Error("easy mix should still meet QoS after transient failures")
	}
	if res.Retries < 2 {
		t.Errorf("Retries = %d, want >= 2", res.Retries)
	}
	failed := 0
	for _, s := range res.History {
		if s.Failed {
			failed++
			if s.Err == "" {
				t.Error("failed step must carry its error text")
			}
		}
	}
	if failed != 2 {
		t.Errorf("history shows %d failed windows, want 2 (failures must stay visible)", failed)
	}
	if res.Attempts != len(res.History) {
		t.Errorf("Attempts = %d, history has %d windows", res.Attempts, len(res.History))
	}
	// Backoff idles simulated time on top of the spent windows.
	if m.Clock() <= float64(m.Observations())*m.Window() {
		t.Error("retry backoff should advance the clock beyond the windows run")
	}
}

func TestNodeFailureFallsBackToLastSafePartition(t *testing.T) {
	m := easyMachine(t, 23)
	// Enough healthy windows for the bootstrap to find a QoS-meeting
	// partition, then the node dies mid-search.
	f := &flaky{Machine: m, failAfterClock: 40}
	res, err := New(f, resilientOpts(23)).Run()
	if err != nil {
		t.Fatalf("fallback should swallow the failure once a safe partition exists: %v", err)
	}
	if !res.FellBack {
		t.Error("result should be marked as a fallback")
	}
	if !res.QoSMeetable || !res.BestObs.AllQoSMet {
		t.Error("fallback must return a QoS-meeting partition")
	}
	truth, err := m.ObserveIdeal(res.Best)
	if err != nil {
		t.Fatal(err)
	}
	if !truth.AllQoSMet {
		t.Error("last-known-safe partition should genuinely meet QoS")
	}
}

func TestNodeFailureWithNoSafePartitionErrors(t *testing.T) {
	m := easyMachine(t, 24)
	f := &flaky{Machine: m, failAfterClock: -1} // dead on arrival
	_, err := New(f, resilientOpts(24)).Run()
	if err == nil {
		t.Fatal("with no safe partition ever observed, Run must surface the failure")
	}
	if !errors.Is(err, server.ErrNodeFailed) {
		t.Errorf("error should carry ErrNodeFailed: %v", err)
	}
}

func TestOutlierRemeasuredToMedian(t *testing.T) {
	m := easyMachine(t, 25)
	sp := &spiky{Machine: m, corrupt: map[int]bool{2: true}}
	rt := &runtime{m: sp, opts: Resilience{Enabled: true}, jobs: m.Jobs(), topo: m.Topology()}
	cfg := resource.EqualSplit(m.Topology(), 3)
	_, clean, err := rt.measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs, score, err := rt.measure(cfg) // corrupted window → median-of-3
	if err != nil {
		t.Fatal(err)
	}
	if score < clean-0.2 {
		t.Errorf("median-of-k should recover a sane score: %v vs clean %v", score, clean)
	}
	if !obs.AllQoSMet {
		t.Error("recovered observation should meet QoS like the clean ones")
	}
	discarded := 0
	for _, s := range rt.history {
		if s.Discarded {
			discarded++
		}
	}
	if discarded != 2 {
		t.Errorf("median-of-3 keeps one window; %d discarded, want 2", discarded)
	}
	if rt.retries == 0 {
		t.Error("re-measurements must count as retries")
	}
}

func TestConfirmViolationOverrulesCorruptedExtremum(t *testing.T) {
	m := easyMachine(t, 26)
	sp := &spiky{Machine: m, corrupt: map[int]bool{1: true}}
	rt := &runtime{m: sp, opts: Resilience{Enabled: true}, jobs: m.Jobs(), topo: m.Topology()}
	cfg := resource.Extremum(m.Topology(), 3, 0) // everything to job 0
	obs, score, err := rt.measure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if obs.QoSMet[0] {
		t.Fatal("test setup: the corrupted window must show a violation")
	}
	confirmed, cObs, _ := rt.confirmViolation(cfg, 0, obs, score)
	if confirmed {
		t.Error("a 1-of-3 violation vote must not eject the job")
	}
	if !cObs.QoSMet[0] {
		t.Error("the corrected observation should show the job meeting QoS")
	}

	// Without resilience the single window is trusted, as before.
	rtPlain := &runtime{m: m, jobs: m.Jobs(), topo: m.Topology()}
	confirmed, _, _ = rtPlain.confirmViolation(cfg, 0, obs, score)
	if !confirmed {
		t.Error("without resilience the verdict must stand on one window")
	}
}

func TestHardenedControllerSurvivesFaultMix(t *testing.T) {
	// The acceptance scenario: a 10% transient + 10% outlier (+5%
	// partial actuation) fault mix on an easy co-location. The
	// hardened controller must still hand back a partition that
	// genuinely meets QoS (checked against noise-free ground truth).
	for _, seed := range []int64{1, 2, 3} {
		m := easyMachine(t, seed)
		inj, err := faults.New(m, faults.Plan{
			Seed: seed * 101, Transient: 0.10, Outlier: 0.10, PartialActuation: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := New(inj, resilientOpts(seed)).Run()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.QoSMeetable {
			t.Errorf("seed %d: hardened run should find a QoS-meeting partition", seed)
			continue
		}
		truth, err := m.ObserveIdeal(res.Best)
		if err != nil {
			t.Fatal(err)
		}
		if !truth.AllQoSMet {
			t.Errorf("seed %d: returned partition fails ground-truth QoS", seed)
		}
	}
}

func TestMonitorToleratesTransientFailures(t *testing.T) {
	m := easyMachine(t, 27)
	base, err := New(m, Options{BO: bo.Options{Seed: 27}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	f := &flaky{Machine: m, failFirst: 2}
	ctrl := New(f, resilientOpts(27))
	reinvoke, err := ctrl.Monitor(base.Best, 6)
	if err != nil {
		t.Fatalf("resilient Monitor should ride out two failed windows: %v", err)
	}
	if reinvoke {
		t.Error("healthy partition should not trigger re-invocation")
	}

	f2 := &flaky{Machine: m, failFirst: 1}
	plain := New(f2, Options{})
	if _, err := plain.Monitor(base.Best, 6); err == nil {
		t.Error("without resilience a failed window must surface")
	}
}
