package core

import (
	"math"
	"testing"

	"clite/internal/bo"
	"clite/internal/resource"
	"clite/internal/server"
	"clite/internal/workload"
)

func easyMachine(t *testing.T, seed int64) *server.Machine {
	t.Helper()
	m := server.New(resource.Default(), server.DefaultSpec(), seed)
	mustAddLC(t, m, "memcached", 0.2)
	mustAddLC(t, m, "img-dnn", 0.1)
	mustAddBG(t, m, "streamcluster")
	return m
}

func mustAddLC(t *testing.T, m *server.Machine, name string, load float64) int {
	t.Helper()
	idx, err := m.AddLC(name, load)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func mustAddBG(t *testing.T, m *server.Machine, name string) int {
	t.Helper()
	idx, err := m.AddBG(name)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// fakeObs builds an observation for score-function unit tests.
func fakeObs(jobs []server.Job, p95 []float64, norm []float64) server.Observation {
	obs := server.Observation{
		P95:       p95,
		NormPerf:  norm,
		QoSMet:    make([]bool, len(jobs)),
		AllQoSMet: true,
	}
	for i, job := range jobs {
		if job.IsLC() {
			obs.QoSMet[i] = p95[i] <= job.QoS
		} else {
			obs.QoSMet[i] = true
		}
		if !obs.QoSMet[i] {
			obs.AllQoSMet = false
		}
	}
	return obs
}

func scoreJobs() []server.Job {
	return []server.Job{
		{Workload: workload.MustByName("memcached"), QoS: 0.004, MaxQPS: 1000, Load: 0.5},
		{Workload: workload.MustByName("img-dnn"), QoS: 0.040, MaxQPS: 100, Load: 0.5},
		{Workload: workload.MustByName("swaptions"), IsoPerf: 100},
	}
}

func TestScoreViolatingModeBelowHalf(t *testing.T) {
	jobs := scoreJobs()
	// memcached violating 2×, img-dnn meeting, BG at full speed.
	obs := fakeObs(jobs, []float64{0.008, 0.020, 0}, []float64{0.5, 1, 1})
	got := ScoreObservation(jobs, obs)
	if got > 0.5 {
		t.Errorf("violating score = %v, must not exceed 0.5", got)
	}
	// Eq. 3 mode 1 with geometric mean: 0.5·√(0.5·1) ≈ 0.3536.
	if math.Abs(got-0.5*math.Sqrt(0.5)) > 1e-9 {
		t.Errorf("score = %v, want %v", got, 0.5*math.Sqrt(0.5))
	}
}

func TestScoreViolationSeverityOrdersScores(t *testing.T) {
	jobs := scoreJobs()
	mild := fakeObs(jobs, []float64{0.005, 0.020, 0}, []float64{0.9, 1, 1})
	severe := fakeObs(jobs, []float64{0.040, 0.020, 0}, []float64{0.2, 1, 1})
	if ScoreObservation(jobs, mild) <= ScoreObservation(jobs, severe) {
		t.Error("milder violations must score higher (smoothness requirement of Sec. 4)")
	}
}

func TestScoreMeetingModeUsesBGPerf(t *testing.T) {
	jobs := scoreJobs()
	obs := fakeObs(jobs, []float64{0.002, 0.020, 0}, []float64{1, 1, 0.64})
	got := ScoreObservation(jobs, obs)
	want := 0.5 + 0.5*0.64
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("score = %v, want %v", got, want)
	}
	if got <= 0.5 {
		t.Error("meeting-QoS score must exceed 0.5")
	}
}

func TestScorePerfectIsOne(t *testing.T) {
	jobs := scoreJobs()
	obs := fakeObs(jobs, []float64{0.002, 0.020, 0}, []float64{1, 1, 1})
	if got := ScoreObservation(jobs, obs); math.Abs(got-1) > 1e-9 {
		t.Errorf("ideal score = %v, want 1", got)
	}
}

func TestScoreNoBGJobsFallsBackToLCPerf(t *testing.T) {
	jobs := scoreJobs()[:2]
	obs := fakeObs(jobs, []float64{0.002, 0.020}, []float64{0.81, 1.0})
	got := ScoreObservation(jobs, obs)
	want := 0.5 + 0.5*math.Sqrt(0.81)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("LC-only score = %v, want %v", got, want)
	}
}

func TestScoreBoundedZeroOne(t *testing.T) {
	jobs := scoreJobs()
	awful := fakeObs(jobs, []float64{10, 10, 0}, []float64{0.001, 0.001, 0.001})
	if got := ScoreObservation(jobs, awful); got < 0 || got > 0.5 {
		t.Errorf("awful score = %v", got)
	}
	// Noise can push NormPerf above 1; the score must stay ≤ 1.
	noisy := fakeObs(jobs, []float64{0.002, 0.02, 0}, []float64{1.2, 1.1, 1.3})
	if got := ScoreObservation(jobs, noisy); got > 1 {
		t.Errorf("score exceeded 1: %v", got)
	}
}

func TestRunRequiresJobs(t *testing.T) {
	m := server.New(resource.Default(), server.DefaultSpec(), 1)
	c := New(m, Options{})
	if _, err := c.Run(); err == nil {
		t.Error("expected error with no jobs")
	}
}

func TestRunEasyMixMeetsQoSAndConverges(t *testing.T) {
	m := easyMachine(t, 42)
	c := New(m, Options{BO: bo.Options{Seed: 42}})
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoSMeetable {
		t.Fatalf("easy mix should meet QoS; best obs: p95=%v", res.BestObs.P95)
	}
	if res.BestScore <= 0.5 {
		t.Errorf("best score = %v, want > 0.5", res.BestScore)
	}
	if len(res.Infeasible) != 0 {
		t.Errorf("no job should be infeasible: %v", res.Infeasible)
	}
	if res.SamplesUsed != len(res.History) {
		t.Error("sample accounting mismatch")
	}
	// Paper: "less than 30 samples even with high number of co-located
	// jobs". The simulated engine trades a few extra samples for
	// noise-robust convergence; it must still stay an order of
	// magnitude below the RAND+/GENETIC budgets and the ORACLE sweep.
	if res.SamplesUsed > 90 {
		t.Errorf("CLITE used %d samples, want well under RAND+'s 120", res.SamplesUsed)
	}
	if err := res.Best.Validate(m.Topology()); err != nil {
		t.Fatal(err)
	}
	// BG job should retain decent performance (Fig. 12/13 shape): the
	// machine-wide optimum gives streamcluster ≈0.44 of isolation;
	// anything clearly above starvation (PARTIES-style leftovers give
	// it ≈0.05) passes.
	if res.BestObs.NormPerf[2] < 0.2 {
		t.Errorf("streamcluster normalized perf = %v, want non-starved", res.BestObs.NormPerf[2])
	}
}

func TestRunDetectsInfeasibleJob(t *testing.T) {
	m := server.New(resource.Default(), server.DefaultSpec(), 7)
	mustAddLC(t, m, "memcached", 1.4) // far past the knee: hopeless
	mustAddLC(t, m, "img-dnn", 0.1)
	c := New(m, Options{BO: bo.Options{Seed: 7}})
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Infeasible) != 1 || res.Infeasible[0] != 0 {
		t.Fatalf("expected job 0 infeasible, got %v", res.Infeasible)
	}
	// Detection must not waste BO cycles: only bootstrap samples used.
	if res.SamplesUsed > m.NumJobs()+1 {
		t.Errorf("infeasibility burned %d samples, want ≤ %d", res.SamplesUsed, m.NumJobs()+1)
	}
}

func TestApplyBest(t *testing.T) {
	m := easyMachine(t, 9)
	c := New(m, Options{BO: bo.Options{Seed: 9, MaxIterations: 10}})
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	obs, err := c.ApplyBest(res)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Config.Equal(res.Best) {
		t.Error("ApplyBest should observe the best config")
	}
	if _, err := c.ApplyBest(Result{}); err == nil {
		t.Error("ApplyBest on empty result should fail")
	}
}

func TestMonitorDetectsLoadShift(t *testing.T) {
	m := easyMachine(t, 21)
	c := New(m, Options{BO: bo.Options{Seed: 21}})
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.QoSMeetable {
		t.Skip("mix unexpectedly infeasible under this seed")
	}
	reinvoke, err := c.Monitor(res.Best, 3)
	if err != nil {
		t.Fatal(err)
	}
	if reinvoke {
		t.Error("steady load should not trigger re-invocation")
	}
	// Quadruple memcached's load: the old partition should crack.
	if err := m.SetLoad(0, 0.95); err != nil {
		t.Fatal(err)
	}
	reinvoke, err = c.Monitor(res.Best, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !reinvoke {
		t.Error("load spike should trigger re-invocation")
	}
}

func TestRunHistoryScoresMatchObservations(t *testing.T) {
	m := easyMachine(t, 31)
	c := New(m, Options{BO: bo.Options{Seed: 31, MaxIterations: 8}})
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	jobs := m.Jobs()
	for i, step := range res.History {
		if got := ScoreObservation(jobs, step.Obs); math.Abs(got-step.Score) > 1e-12 {
			t.Fatalf("step %d: recorded score %v, recomputed %v", i, step.Score, got)
		}
	}
}
