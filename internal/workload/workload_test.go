package workload

import (
	"math"
	"testing"
	"testing/quick"

	"clite/internal/resource"
)

func topo() resource.Topology { return resource.Default() }

// allocWith builds a physical allocation directly for model tests.
func allocWith(cores int, cacheMB, bw, mem, disk float64) Alloc {
	return Alloc{Cores: cores, CacheMB: cacheMB, MemBwGB: bw, MemGB: mem, DiskBw: disk}
}

func ample(cores int) Alloc { return allocWith(cores, 14, 20, 40, 2) }

func TestRegistryShape(t *testing.T) {
	if got := len(LC()); got != 5 {
		t.Errorf("LC count = %d, want 5 (Table 3)", got)
	}
	if got := len(BG()); got != 6 {
		t.Errorf("BG count = %d, want 6 (Table 3)", got)
	}
	for _, p := range All() {
		if p.Name == "" || p.Desc == "" {
			t.Errorf("profile %+v missing name/desc", p)
		}
		switch p.Class {
		case LatencyCritical:
			if p.BaseServiceSec <= 0 {
				t.Errorf("%s: LC profile needs BaseServiceSec", p.Name)
			}
		case Background:
			if p.BaseOpSec <= 0 {
				t.Errorf("%s: BG profile needs BaseOpSec", p.Name)
			}
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("memcached")
	if err != nil || p.Name != "memcached" {
		t.Fatalf("ByName failed: %v %v", p, err)
	}
	if _, err := ByName("nginx"); err == nil {
		t.Error("expected error for unknown workload")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName should panic on unknown name")
		}
	}()
	MustByName("nginx")
}

func TestAcronyms(t *testing.T) {
	if Acronym("streamcluster") != "SC" || Acronym("blackscholes") != "BS" {
		t.Error("missing paper acronyms")
	}
	if Acronym("memcached") != "memcached" {
		t.Error("LC jobs pass through unchanged")
	}
}

func TestClassString(t *testing.T) {
	if LatencyCritical.String() != "latency-critical" || Background.String() != "background" {
		t.Error("bad class strings")
	}
}

func TestPhysicalConversion(t *testing.T) {
	tp := topo()
	cfg := resource.EqualSplit(tp, 2)
	a := Physical(tp, cfg.Jobs[0])
	if a.Cores != 10 {
		t.Errorf("cores = %d, want 10", a.Cores)
	}
	// 6 of 11 ways of a 14080 KB cache.
	wantMB := 6 * (14080.0 / 11 / 1024)
	if math.Abs(a.CacheMB-wantMB) > 1e-9 {
		t.Errorf("cacheMB = %v, want %v", a.CacheMB, wantMB)
	}
	if a.MemBwGB != 10 || a.MemGB != 23 || a.DiskBw != 1.0 {
		t.Errorf("bw/mem/disk = %v/%v/%v", a.MemBwGB, a.MemGB, a.DiskBw)
	}
}

func TestPhysicalDefaultsAmpleForMissingResources(t *testing.T) {
	tp := resource.Small() // no capacity/disk dimensions
	cfg := resource.EqualSplit(tp, 2)
	a := Physical(tp, cfg.Jobs[0])
	if a.MemGB < 1e5 || a.DiskBw < 1e5 {
		t.Error("absent resources should default to ample")
	}
}

func TestFullMachine(t *testing.T) {
	a := FullMachine(topo())
	if a.Cores != 20 || a.MemBwGB != 20 || a.MemGB != 46 {
		t.Errorf("full machine = %+v", a)
	}
}

func TestMissRateMonotoneAndBounded(t *testing.T) {
	for _, p := range All() {
		prev := 1.1
		for c := 0.5; c <= 20; c += 0.5 {
			m := p.MissRate(c)
			if m < p.MinMissRate-1e-12 || m > 1 {
				t.Fatalf("%s: miss rate %v out of bounds at %v MB", p.Name, m, c)
			}
			if m > prev+1e-12 {
				t.Fatalf("%s: miss rate not monotone at %v MB", p.Name, c)
			}
			prev = m
		}
	}
}

func TestP95DecreasesWithCores(t *testing.T) {
	p := MustByName("img-dnn")
	lambda := 2000.0
	prev := math.Inf(1)
	for cores := 2; cores <= 14; cores += 2 {
		v := p.P95(ample(cores), lambda, 2.0)
		if v > prev+1e-9 {
			t.Fatalf("p95 should not increase with cores: %v at %d", v, cores)
		}
		prev = v
	}
}

func TestP95IncreasesWithLoad(t *testing.T) {
	p := MustByName("memcached")
	alloc := ample(10)
	prev := 0.0
	for _, lambda := range []float64{1000, 5000, 10000, 20000, 26000, 30000} {
		v := p.P95(alloc, lambda, 2.0)
		if v < prev-1e-12 {
			t.Fatalf("p95 should grow with load: %v at λ=%v", v, lambda)
		}
		prev = v
	}
}

// TestResourceEquivalenceClass reproduces the paper's Fig. 1 property:
// a cache-squeezed allocation can be compensated with more memory
// bandwidth, and a bandwidth-squeezed one with more cache.
func TestResourceEquivalenceClass(t *testing.T) {
	p := MustByName("masstree")
	lambda := 4000.0
	squeezedCache := p.P95(allocWith(8, 2, 6, 40, 2), lambda, 2.0)
	cacheCompensatedWithBw := p.P95(allocWith(8, 2, 16, 40, 2), lambda, 2.0)
	moreCacheLessBw := p.P95(allocWith(8, 10, 6, 40, 2), lambda, 2.0)
	if cacheCompensatedWithBw >= squeezedCache {
		t.Errorf("bandwidth should compensate for cache: %v vs %v", cacheCompensatedWithBw, squeezedCache)
	}
	if moreCacheLessBw >= squeezedCache {
		t.Errorf("cache should compensate for bandwidth pressure: %v vs %v", moreCacheLessBw, squeezedCache)
	}
}

// TestSensitivityProfiles pins the qualitative sensitivities the paper
// relies on in Sec. 5.2.
func TestSensitivityProfiles(t *testing.T) {
	// Relative p95 improvement when a resource share doubles.
	gain := func(p *Profile, lambda float64, base, improved Alloc) float64 {
		b := p.P95(base, lambda, 2.0)
		i := p.P95(improved, lambda, 2.0)
		return (b - i) / b
	}
	// masstree reacts more to bandwidth than img-dnn does.
	mtBw := gain(MustByName("masstree"), 4000, allocWith(8, 5, 5, 40, 2), allocWith(8, 5, 12, 40, 2))
	idBw := gain(MustByName("img-dnn"), 1800, allocWith(8, 5, 5, 40, 2), allocWith(8, 5, 12, 40, 2))
	if mtBw <= idBw {
		t.Errorf("masstree bw gain %v should exceed img-dnn's %v", mtBw, idBw)
	}
	// img-dnn reacts more to cache than memcached does.
	idCache := gain(MustByName("img-dnn"), 1800, allocWith(8, 2, 12, 40, 2), allocWith(8, 10, 12, 40, 2))
	mcCache := gain(MustByName("memcached"), 15000, allocWith(8, 2, 12, 40, 2), allocWith(8, 10, 12, 40, 2))
	if idCache <= mcCache {
		t.Errorf("img-dnn cache gain %v should exceed memcached's %v", idCache, mcCache)
	}
	// memcached is capacity-hungry: squeezing memory below footprint hurts badly.
	mcCap := gain(MustByName("memcached"), 15000, allocWith(8, 5, 12, 8, 2), allocWith(8, 5, 12, 36, 2))
	if mcCap < 0.2 {
		t.Errorf("memcached capacity gain = %v, want substantial", mcCap)
	}
}

func TestPagingCouplesToDiskBandwidth(t *testing.T) {
	p := MustByName("specjbb") // 22 GB footprint
	lambda := 3000.0
	paged := p.P95(allocWith(10, 7, 10, 8, 0.2), lambda, 2.0)
	pagedFastDisk := p.P95(allocWith(10, 7, 10, 8, 2.0), lambda, 2.0)
	unpaged := p.P95(allocWith(10, 7, 10, 24, 0.2), lambda, 2.0)
	if pagedFastDisk >= paged {
		t.Errorf("more disk bandwidth should soften paging: %v vs %v", pagedFastDisk, paged)
	}
	if unpaged >= pagedFastDisk {
		t.Errorf("enough capacity should beat paging entirely: %v vs %v", unpaged, pagedFastDisk)
	}
}

func TestXapianNeedsDiskBandwidth(t *testing.T) {
	p := MustByName("xapian")
	lambda := 1500.0
	starved := p.P95(allocWith(10, 7, 10, 16, 0.2), lambda, 2.0)
	fed := p.P95(allocWith(10, 7, 10, 16, 1.0), lambda, 2.0)
	if fed >= starved {
		t.Errorf("xapian should benefit from disk bandwidth: %v vs %v", fed, starved)
	}
}

func TestThroughputMonotoneInCores(t *testing.T) {
	for _, p := range BG() {
		prev := 0.0
		for cores := 1; cores <= 20; cores++ {
			v := p.Throughput(ample(cores))
			if v < prev-1e-9 {
				t.Fatalf("%s: throughput fell with cores at %d", p.Name, cores)
			}
			prev = v
		}
	}
}

func TestBGSensitivities(t *testing.T) {
	relGain := func(p *Profile, base, improved Alloc) float64 {
		b := p.Throughput(base)
		return (p.Throughput(improved) - b) / b
	}
	// streamcluster is the cache-hungry one; swaptions barely cares.
	scCache := relGain(MustByName("streamcluster"), allocWith(8, 2, 10, 40, 2), allocWith(8, 12, 10, 40, 2))
	swCache := relGain(MustByName("swaptions"), allocWith(8, 2, 10, 40, 2), allocWith(8, 12, 10, 40, 2))
	if scCache <= 4*swCache {
		t.Errorf("streamcluster cache gain %v should dwarf swaptions' %v", scCache, swCache)
	}
	// canneal is the bandwidth-hungry one.
	cnBw := relGain(MustByName("canneal"), allocWith(8, 5, 3, 40, 2), allocWith(8, 5, 12, 40, 2))
	bsBw := relGain(MustByName("blackscholes"), allocWith(8, 5, 3, 40, 2), allocWith(8, 5, 12, 40, 2))
	if cnBw <= 4*bsBw {
		t.Errorf("canneal bw gain %v should dwarf blackscholes' %v", cnBw, bsBw)
	}
}

func TestIsolationThroughputIsUpperBound(t *testing.T) {
	tp := topo()
	for _, p := range BG() {
		iso := p.IsolationThroughput(tp)
		cfg := resource.EqualSplit(tp, 3)
		part := p.Throughput(Physical(tp, cfg.Jobs[0]))
		if part > iso*1.0001 {
			t.Errorf("%s: partitioned throughput %v exceeds isolation %v", p.Name, part, iso)
		}
	}
}

func TestThroughputNeverExceedsIsolationProperty(t *testing.T) {
	tp := topo()
	sc := MustByName("streamcluster")
	iso := sc.IsolationThroughput(tp)
	f := func(seed int64) bool {
		rngCfg := resource.Random(tp, 3, rngFor(seed))
		v := sc.Throughput(Physical(tp, rngCfg.Jobs[0]))
		return v > 0 && v <= iso*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestClassPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	assertPanics("Queue on BG", func() {
		MustByName("canneal").Queue(ample(4), 100)
	})
	assertPanics("Throughput on LC", func() {
		MustByName("xapian").Throughput(ample(4))
	})
}

func TestQueueFixedPointFinite(t *testing.T) {
	f := func(seed int64, loadByte uint8) bool {
		tp := topo()
		cfg := resource.Random(tp, 3, rngFor(seed))
		lambda := 100 + float64(loadByte)*100
		for _, p := range LC() {
			q := p.Queue(Physical(tp, cfg.Jobs[0]), lambda)
			if q.Servers < 1 || math.IsNaN(q.ServiceRate) || q.ServiceRate <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
