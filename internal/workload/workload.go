// Package workload models the latency-critical (Tailbench) and
// background (PARSEC) workloads of the paper's Table 3 as analytic
// performance models over resource allocations.
//
// The controller under study treats workloads as black boxes: it only
// ever observes (resource partition → p95 latency / throughput). What
// matters for reproducing the paper is therefore the *shape* of that
// response surface, and the shapes the paper exploits all arise from a
// small set of architectural mechanisms that this package models
// explicitly:
//
//   - cache ways ↔ memory bandwidth equivalence: fewer LLC ways mean a
//     higher miss rate, which raises memory traffic, which makes the
//     job need more bandwidth (Fig. 1's QoS-safe region curvature);
//   - cores ↔ cache equivalence: misses raise CPI, so a job can trade
//     more cores against more cache to reach the same service rate;
//   - memory capacity → disk coupling: a resident set larger than the
//     allocated capacity pages through the disk-bandwidth share;
//   - diminishing returns in every dimension and per-job parallelism
//     ceilings.
//
// Each model computes, for a given physical allocation, an effective
// cycles-per-instruction and from it an M/M/c service configuration
// (for LC jobs) or a normalized throughput (for BG jobs).
package workload

import (
	"fmt"
	"math"

	"clite/internal/latsim"
	"clite/internal/resource"
)

// Class distinguishes latency-critical from background workloads.
type Class int

const (
	// LatencyCritical jobs have a p95 QoS target and an offered load.
	LatencyCritical Class = iota
	// Background jobs run flat out; their metric is throughput
	// normalized to isolation.
	Background
)

// String names the class.
func (c Class) String() string {
	if c == LatencyCritical {
		return "latency-critical"
	}
	return "background"
}

// Profile is the static performance model of one workload. The fields
// are physical parameters; the derived QoS target and maximum load of
// LC workloads are calibrated by internal/qos exactly as the paper
// derives them (knee of the isolation QPS-vs-p95 curve, Fig. 6).
type Profile struct {
	Name  string
	Class Class
	Desc  string // Table 3 description

	// Compute.
	MaxThreads int     // parallelism ceiling (extra cores beyond this are wasted)
	BaseCPI    float64 // CPI with all memory references hitting cache
	MemCPI     float64 // CPI added per unit miss intensity

	// Cache behaviour.
	WorkingSetMB float64 // LLC footprint; allocations beyond it stop helping
	MinMissRate  float64 // compulsory misses that no amount of cache removes

	// Memory traffic.
	BytesPerOpGB float64 // GB of memory traffic per request/op at miss rate 1

	// Memory capacity.
	FootprintGB float64 // resident set; less capacity than this pages to disk

	// Disk.
	DiskBwNeedGB float64 // GB/s of intrinsic disk traffic (I/O, logging)

	// LC-only: per-request service demand on one core at best-case CPI.
	BaseServiceSec float64

	// BG-only: per-op compute demand on one core at best-case CPI.
	BaseOpSec float64
}

// pageCPIFactor scales how violently paging inflates CPI. One page
// fault costs orders of magnitude more than a cache miss.
const pageCPIFactor = 5.0

// Alloc is a physical resource allocation (units converted through the
// topology's unit sizes). Missing resources default to "ample".
type Alloc struct {
	Cores   int
	CacheMB float64
	MemBwGB float64 // GB/s
	MemGB   float64
	DiskBw  float64 // GB/s
}

// Physical converts one job's unit allocation under a topology into
// physical quantities. Resources absent from the topology are treated
// as unconstrained (the paper's testbed always partitions all five).
func Physical(t resource.Topology, a resource.Allocation) Alloc {
	phys := Alloc{
		Cores:   1,
		CacheMB: 1e6,
		MemBwGB: 1e6,
		MemGB:   1e6,
		DiskBw:  1e6,
	}
	for r, spec := range t {
		amount := float64(a[r]) * spec.UnitValue
		switch spec.Kind {
		case resource.Cores:
			phys.Cores = a[r]
		case resource.LLCWays:
			phys.CacheMB = amount
		case resource.MemBandwidth:
			phys.MemBwGB = amount
		case resource.MemCapacity:
			phys.MemGB = amount
		case resource.DiskBandwidth:
			phys.DiskBw = amount
		}
	}
	return phys
}

// FullMachine returns the allocation of the entire topology, used for
// isolation baselines.
func FullMachine(t resource.Topology) Alloc {
	full := resource.NewConfig(t, 1)
	for r := range t {
		full.Jobs[0][r] = t[r].Units
	}
	return Physical(t, full.Jobs[0])
}

// MissRate returns the LLC miss ratio under the given cache share: an
// exponential fill of the working set floored at the compulsory rate.
func (p *Profile) MissRate(cacheMB float64) float64 {
	if p.WorkingSetMB <= 0 {
		return p.MinMissRate
	}
	fill := 1 - math.Exp(-2.2*cacheMB/p.WorkingSetMB)
	miss := 1 - fill
	if miss < 0 {
		miss = 0
	}
	return p.MinMissRate + (1-p.MinMissRate)*miss
}

// refCPI is the best-case CPI used to normalize service demand: the
// CPI at compulsory miss rate with no bandwidth or paging stretch.
func (p *Profile) refCPI() float64 {
	return p.BaseCPI + p.MemCPI*p.MinMissRate
}

// cpi computes the effective CPI for a given miss rate, memory-traffic
// demand (GB/s), and allocation. It implements the coupling chain:
// misses generate traffic; traffic beyond the bandwidth share stalls;
// a resident set beyond the capacity share pages through the disk
// share.
func (p *Profile) cpi(miss, trafficGB float64, alloc Alloc) float64 {
	bwStretch := 1.0
	if alloc.MemBwGB > 0 && trafficGB > alloc.MemBwGB {
		bwStretch = trafficGB / alloc.MemBwGB
	}
	pageFrac := 0.0
	if alloc.MemGB < p.FootprintGB && p.FootprintGB > 0 {
		pageFrac = 1 - alloc.MemGB/p.FootprintGB
	}
	diskStretch := 1.0
	// A paging job sustains swap traffic proportional to how many
	// cores keep touching evicted pages, plus a share of its memory
	// traffic that now round-trips through the swap device.
	diskDemand := p.DiskBwNeedGB + pageFrac*(0.08*float64(alloc.Cores)+0.25*trafficGB)
	if alloc.DiskBw > 0 && diskDemand > alloc.DiskBw {
		diskStretch = diskDemand / alloc.DiskBw
	}
	memComponent := p.MemCPI * miss * bwStretch
	pageComponent := pageCPIFactor * p.MemCPI * pageFrac * diskStretch
	ioComponent := 0.0
	if p.DiskBwNeedGB > 0 {
		// Intrinsic I/O slows the job when its disk share is squeezed.
		ioComponent = 0.35 * p.BaseCPI * (diskStretch - 1)
	}
	return p.BaseCPI + memComponent + pageComponent + ioComponent
}

// servers returns the usable parallelism of the allocation.
func (p *Profile) servers(alloc Alloc) int {
	s := alloc.Cores
	if p.MaxThreads > 0 && s > p.MaxThreads {
		s = p.MaxThreads
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Queue resolves the M/M/c station an LC workload presents under the
// allocation at offered load lambda (requests/second). Because memory
// traffic depends on achieved throughput, which depends on the service
// rate, which depends on traffic, it iterates the fixed point a few
// rounds (it contracts quickly).
func (p *Profile) Queue(alloc Alloc, lambda float64) latsim.Queue {
	if p.Class != LatencyCritical {
		panic(fmt.Sprintf("workload: Queue called on background job %s", p.Name))
	}
	miss := p.MissRate(alloc.CacheMB)
	s := p.servers(alloc)
	x := lambda
	var mu float64
	for i := 0; i < 16; i++ {
		traffic := x * p.BytesPerOpGB * miss
		c := p.cpi(miss, traffic, alloc)
		mu = 1 / (p.BaseServiceSec * c / p.refCPI())
		cap := float64(s) * mu
		next := lambda
		if next > cap {
			next = cap
		}
		x = 0.5 * (x + next) // damping keeps the iteration from oscillating
	}
	return latsim.Queue{Servers: s, ServiceRate: mu}
}

// P95 returns the steady-state 95th-percentile latency of the LC
// workload under the allocation at offered load lambda, as an
// observation window of the given length would ideally report it.
func (p *Profile) P95(alloc Alloc, lambda, window float64) float64 {
	return p.Queue(alloc, lambda).P95(lambda, window)
}

// Throughput returns a BG workload's throughput (ops/second) under the
// allocation. BG jobs run work-conserving on all their cores.
func (p *Profile) Throughput(alloc Alloc) float64 {
	if p.Class != Background {
		panic(fmt.Sprintf("workload: Throughput called on LC job %s", p.Name))
	}
	miss := p.MissRate(alloc.CacheMB)
	s := p.servers(alloc)
	// Traffic is generated by every active core at its achieved speed;
	// fixed point as for Queue, damped against oscillation.
	speed := 1.0
	for i := 0; i < 16; i++ {
		perCoreOps := speed / p.BaseOpSec // ops/s/core at current speed
		traffic := float64(s) * perCoreOps * p.BytesPerOpGB * miss
		c := p.cpi(miss, traffic, alloc)
		speed = 0.5 * (speed + p.refCPI()/c)
	}
	return float64(s) * speed / p.BaseOpSec
}

// IsolationThroughput returns the BG throughput with the whole machine
// (the paper's Iso-Perf denominator in Eq. 3).
func (p *Profile) IsolationThroughput(t resource.Topology) float64 {
	return p.Throughput(FullMachine(t))
}
