package workload

import (
	"fmt"
	"sort"
)

// The profiles below are the Table 3 workloads. Absolute constants are
// calibrated so that, on the default topology, each workload's
// isolation knee (Fig. 6) and its dominant resource sensitivity match
// the paper's qualitative characterization:
//
//   - img-dnn     : compute- and cache-sensitive (Sec. 5.2: "more
//     sensitive on number of cores and L3 cache ways than memory
//     bandwidth"), moderate per-request cost;
//   - masstree    : memory-bandwidth-bound key-value store (Sec. 5.2:
//     "masstree is sensitive on memory bandwidth"), working set larger
//     than the LLC;
//   - memcached   : very short requests, core- and memory-capacity-
//     hungry, high maximum QPS;
//   - specjbb     : Java middleware, large heap (capacity-sensitive),
//     balanced core/cache profile;
//   - xapian      : online search over an on-disk index — the only LC
//     job with intrinsic disk-bandwidth demand;
//   - blackscholes, swaptions       : CPU-bound BG jobs;
//   - canneal                        : bandwidth-hungry BG job with a
//     working set far beyond the LLC;
//   - streamcluster                  : strongly LLC-sensitive BG job
//     (the one CLITE gives extra ways in Fig. 9a);
//   - fluidanimate, freqmine         : mixed-sensitivity BG jobs.
func registry() []*Profile {
	return []*Profile{
		{
			Name: "img-dnn", Class: LatencyCritical,
			Desc:       "Image recognition (Tailbench)",
			MaxThreads: 14, BaseCPI: 1.0, MemCPI: 2.0,
			WorkingSetMB: 11, MinMissRate: 0.05,
			BytesPerOpGB: 0.002, FootprintGB: 6,
			BaseServiceSec: 0.003,
		},
		{
			Name: "masstree", Class: LatencyCritical,
			Desc:       "Key-value store (Tailbench)",
			MaxThreads: 16, BaseCPI: 0.8, MemCPI: 2.5,
			WorkingSetMB: 24, MinMissRate: 0.12,
			BytesPerOpGB: 0.005, FootprintGB: 10,
			BaseServiceSec: 0.0008,
		},
		{
			Name: "memcached", Class: LatencyCritical,
			Desc:       "Key-value store with Mutilate load generator",
			MaxThreads: 20, BaseCPI: 0.6, MemCPI: 1.4,
			WorkingSetMB: 2.5, MinMissRate: 0.08,
			BytesPerOpGB: 0.0004, FootprintGB: 16,
			BaseServiceSec: 0.00035,
		},
		{
			Name: "specjbb", Class: LatencyCritical,
			Desc:       "Java middleware (Tailbench)",
			MaxThreads: 20, BaseCPI: 0.9, MemCPI: 1.8,
			WorkingSetMB: 9, MinMissRate: 0.06,
			BytesPerOpGB: 0.0012, FootprintGB: 20,
			BaseServiceSec: 0.0012,
		},
		{
			Name: "xapian", Class: LatencyCritical,
			Desc:       "Online search, English Wikipedia (Tailbench)",
			MaxThreads: 20, BaseCPI: 1.1, MemCPI: 1.6,
			WorkingSetMB: 10, MinMissRate: 0.07,
			BytesPerOpGB: 0.0009, FootprintGB: 8,
			DiskBwNeedGB: 0.35, BaseServiceSec: 0.004,
		},
		{
			Name: "blackscholes", Class: Background,
			Desc:       "Option pricing with Black-Scholes PDE (PARSEC)",
			MaxThreads: 20, BaseCPI: 1.0, MemCPI: 0.8,
			WorkingSetMB: 1, MinMissRate: 0.02,
			BytesPerOpGB: 0.000002, FootprintGB: 2,
			BaseOpSec: 0.00002,
		},
		{
			Name: "canneal", Class: Background,
			Desc:       "Simulated cache-aware annealing for chip design (PARSEC)",
			MaxThreads: 20, BaseCPI: 0.7, MemCPI: 3.0,
			WorkingSetMB: 28, MinMissRate: 0.25,
			BytesPerOpGB: 0.0001, FootprintGB: 12,
			BaseOpSec: 0.00004,
		},
		{
			Name: "fluidanimate", Class: Background,
			Desc:       "Fluid dynamics for animation (PARSEC)",
			MaxThreads: 20, BaseCPI: 0.9, MemCPI: 1.5,
			WorkingSetMB: 5, MinMissRate: 0.05,
			BytesPerOpGB: 0.00001, FootprintGB: 5,
			BaseOpSec: 0.00003,
		},
		{
			Name: "freqmine", Class: Background,
			Desc:       "Frequent itemset mining (PARSEC)",
			MaxThreads: 20, BaseCPI: 1.0, MemCPI: 2.0,
			WorkingSetMB: 10, MinMissRate: 0.05,
			BytesPerOpGB: 0.000008, FootprintGB: 8,
			BaseOpSec: 0.00005,
		},
		{
			Name: "streamcluster", Class: Background,
			Desc:       "Online clustering of an input stream (PARSEC)",
			MaxThreads: 20, BaseCPI: 0.8, MemCPI: 2.8,
			WorkingSetMB: 13, MinMissRate: 0.08,
			BytesPerOpGB: 0.000015, FootprintGB: 4,
			BaseOpSec: 0.00004,
		},
		{
			Name: "swaptions", Class: Background,
			Desc:       "Pricing of a portfolio of swaptions (PARSEC)",
			MaxThreads: 20, BaseCPI: 1.0, MemCPI: 0.5,
			WorkingSetMB: 0.5, MinMissRate: 0.01,
			BytesPerOpGB: 0.000001, FootprintGB: 2,
			BaseOpSec: 0.000025,
		},
	}
}

// Acronyms used by the paper's Fig. 14 for BG jobs.
var bgAcronyms = map[string]string{
	"blackscholes":  "BS",
	"canneal":       "CN",
	"fluidanimate":  "FA",
	"freqmine":      "FM",
	"streamcluster": "SC",
	"swaptions":     "SW",
}

// Acronym returns the paper's short name for a BG workload ("BS",
// "SC", ...), or the full name for workloads without one.
func Acronym(name string) string {
	if a, ok := bgAcronyms[name]; ok {
		return a
	}
	return name
}

// All returns every workload profile, LC first, in stable order.
func All() []*Profile {
	ps := registry()
	sort.SliceStable(ps, func(i, j int) bool {
		if ps[i].Class != ps[j].Class {
			return ps[i].Class == LatencyCritical
		}
		return ps[i].Name < ps[j].Name
	})
	return ps
}

// LC returns the latency-critical profiles in name order.
func LC() []*Profile {
	var out []*Profile
	for _, p := range All() {
		if p.Class == LatencyCritical {
			out = append(out, p)
		}
	}
	return out
}

// BG returns the background profiles in name order.
func BG() []*Profile {
	var out []*Profile
	for _, p := range All() {
		if p.Class == Background {
			out = append(out, p)
		}
	}
	return out
}

// ByName looks a profile up by its Table 3 name.
func ByName(name string) (*Profile, error) {
	for _, p := range registry() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q", name)
}

// MustByName is ByName for static workload names in tests and
// examples; it panics on unknown names.
func MustByName(name string) *Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}
