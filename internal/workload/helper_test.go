package workload

import "clite/internal/stats"

// rngFor gives tests a deterministic stream per seed.
func rngFor(seed int64) *stats.RNG { return stats.NewRNG(seed) }
