package server

import (
	"strings"
	"testing"

	"clite/internal/resource"
	"clite/internal/stats"
)

func newTestMachine(t *testing.T, seed int64) *Machine {
	t.Helper()
	return New(resource.Default(), DefaultSpec(), seed)
}

func placeMix(t *testing.T, m *Machine) {
	t.Helper()
	if _, err := m.AddLC("memcached", 0.3); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddLC("img-dnn", 0.2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		t.Fatal(err)
	}
}

func TestTable2Rendering(t *testing.T) {
	out := DefaultSpec().Table2()
	for _, want := range []string{"Xeon", "20 Cores (10 physical cores)", "14080 KB (11-way set associative)", "46 GB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestAddJobValidation(t *testing.T) {
	m := newTestMachine(t, 1)
	if _, err := m.AddLC("canneal", 0.5); err == nil {
		t.Error("AddLC should reject BG workloads")
	}
	if _, err := m.AddBG("memcached"); err == nil {
		t.Error("AddBG should reject LC workloads")
	}
	if _, err := m.AddLC("nope", 0.5); err == nil {
		t.Error("AddLC should reject unknown workloads")
	}
	if _, err := m.AddLC("memcached", 0); err == nil {
		t.Error("AddLC should reject zero load")
	}
	if _, err := m.AddLC("memcached", 2.0); err == nil {
		t.Error("AddLC should reject absurd load")
	}
}

func TestAddLCCalibratesOnce(t *testing.T) {
	m := newTestMachine(t, 1)
	idx, err := m.AddLC("memcached", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	job := m.Jobs()[idx]
	if job.MaxQPS <= 0 || job.QoS <= 0 {
		t.Fatalf("job not calibrated: %+v", job)
	}
	if got := job.Lambda(); got != 0.4*job.MaxQPS {
		t.Errorf("Lambda = %v", got)
	}
	if _, ok := m.Calibration("memcached"); !ok {
		t.Error("calibration should be cached")
	}
	// Second instance reuses the cache (same numbers).
	idx2, _ := m.AddLC("memcached", 0.1)
	if m.Jobs()[idx2].MaxQPS != job.MaxQPS {
		t.Error("cached calibration should be reused")
	}
}

func TestAddBGSamplesIsoPerf(t *testing.T) {
	m := newTestMachine(t, 1)
	idx, err := m.AddBG("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs()[idx].IsoPerf <= 0 {
		t.Error("BG job should have isolation throughput sampled")
	}
	if m.Jobs()[idx].IsLC() {
		t.Error("BG job misclassified")
	}
}

func TestObserveShapesAndClock(t *testing.T) {
	m := newTestMachine(t, 42)
	placeMix(t, m)
	cfg := resource.EqualSplit(m.Topology(), 3)
	obs, err := m.Observe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.P95) != 3 || len(obs.Throughput) != 3 || len(obs.NormPerf) != 3 {
		t.Fatalf("bad observation shape: %+v", obs)
	}
	// LC jobs have p95, no throughput; BG the reverse.
	if obs.P95[0] <= 0 || obs.Throughput[0] != 0 {
		t.Errorf("LC measurement wrong: p95=%v thr=%v", obs.P95[0], obs.Throughput[0])
	}
	if obs.Throughput[2] <= 0 || obs.P95[2] != 0 {
		t.Errorf("BG measurement wrong: p95=%v thr=%v", obs.P95[2], obs.Throughput[2])
	}
	if !obs.QoSMet[2] {
		t.Error("BG jobs always count as QoS-met")
	}
	if m.Clock() != DefaultWindow || m.Observations() != 1 {
		t.Errorf("clock=%v obs=%d", m.Clock(), m.Observations())
	}
	if m.ActuationCost() <= 0 {
		t.Error("actuation cost should accrue")
	}
	if obs.At != m.Clock() {
		t.Error("observation timestamp should match the clock")
	}
}

func TestObserveErrors(t *testing.T) {
	m := newTestMachine(t, 1)
	if _, err := m.Observe(resource.EqualSplit(m.Topology(), 2)); err == nil {
		t.Error("observe with no jobs should fail")
	}
	placeMix(t, m)
	if _, err := m.Observe(resource.EqualSplit(m.Topology(), 2)); err == nil {
		t.Error("job-count mismatch should fail")
	}
	bad := resource.EqualSplit(m.Topology(), 3)
	bad.Jobs[0][0] = 0
	bad.Jobs[1][0] += 1
	if _, err := m.Observe(bad); err == nil {
		t.Error("infeasible config should fail")
	}
}

func TestObserveIdealIsDeterministicAndFree(t *testing.T) {
	m := newTestMachine(t, 7)
	placeMix(t, m)
	cfg := resource.EqualSplit(m.Topology(), 3)
	a, err := m.ObserveIdeal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.ObserveIdeal(cfg)
	for i := range a.P95 {
		if a.P95[i] != b.P95[i] || a.Throughput[i] != b.Throughput[i] {
			t.Fatal("ideal observation must be deterministic")
		}
	}
	if m.Clock() != 0 || m.Observations() != 0 {
		t.Error("ideal observation must not consume time")
	}
}

func TestObserveNoiseIsBoundedAroundIdeal(t *testing.T) {
	m := newTestMachine(t, 99)
	placeMix(t, m)
	cfg := resource.EqualSplit(m.Topology(), 3)
	ideal, _ := m.ObserveIdeal(cfg)
	var ratios []float64
	for i := 0; i < 200; i++ {
		obs, err := m.Observe(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, obs.P95[0]/ideal.P95[0])
	}
	mean := stats.Mean(ratios)
	if mean < 0.9 || mean > 1.1 {
		t.Errorf("noisy p95 should center on ideal: mean ratio %v", mean)
	}
	if stats.StdDev(ratios) > 0.25 {
		t.Errorf("noise too large: %v", stats.StdDev(ratios))
	}
}

func TestBetterAllocationImprovesNormPerf(t *testing.T) {
	m := newTestMachine(t, 3)
	placeMix(t, m)
	topo := m.Topology()
	generous := resource.Extremum(topo, 3, 2) // all to streamcluster
	stingy := resource.Extremum(topo, 3, 0)   // all to memcached
	a, _ := m.ObserveIdeal(generous)
	b, _ := m.ObserveIdeal(stingy)
	if a.NormPerf[2] <= b.NormPerf[2] {
		t.Errorf("streamcluster should prefer the generous split: %v vs %v", a.NormPerf[2], b.NormPerf[2])
	}
	if a.NormPerf[2] > 1.001 {
		t.Errorf("normalized perf should not exceed isolation: %v", a.NormPerf[2])
	}
}

func TestSetLoadAffectsLatency(t *testing.T) {
	m := newTestMachine(t, 5)
	placeMix(t, m)
	cfg := resource.EqualSplit(m.Topology(), 3)
	low, _ := m.ObserveIdeal(cfg)
	if err := m.SetLoad(0, 0.9); err != nil {
		t.Fatal(err)
	}
	high, _ := m.ObserveIdeal(cfg)
	if high.P95[0] <= low.P95[0] {
		t.Errorf("higher load should raise p95: %v vs %v", high.P95[0], low.P95[0])
	}
	if err := m.SetLoad(2, 0.5); err == nil {
		t.Error("SetLoad on BG job should fail")
	}
	if err := m.SetLoad(9, 0.5); err == nil {
		t.Error("SetLoad on missing job should fail")
	}
	if err := m.SetLoad(0, -1); err == nil {
		t.Error("SetLoad with bad load should fail")
	}
}

func TestQoSViolationDetected(t *testing.T) {
	m := newTestMachine(t, 11)
	if _, err := m.AddLC("memcached", 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddBG("canneal"); err != nil {
		t.Fatal(err)
	}
	topo := m.Topology()
	// Starve memcached of everything.
	starved := resource.Extremum(topo, 2, 1)
	obs, err := m.ObserveIdeal(starved)
	if err != nil {
		t.Fatal(err)
	}
	if obs.QoSMet[0] || obs.AllQoSMet {
		t.Error("starved memcached at 90% load should violate QoS")
	}
	// Feed it everything.
	fed := resource.Extremum(topo, 2, 0)
	obs, _ = m.ObserveIdeal(fed)
	if !obs.QoSMet[0] {
		t.Errorf("fully-fed memcached should meet QoS (p95=%v target=%v)", obs.P95[0], m.Jobs()[0].QoS)
	}
}

func TestSetWindow(t *testing.T) {
	m := newTestMachine(t, 1)
	m.SetWindow(1.0)
	if m.Window() != 1.0 {
		t.Error("SetWindow should apply")
	}
	m.SetWindow(-1)
	if m.Window() != 1.0 {
		t.Error("SetWindow should ignore non-positive values")
	}
}

// TestObserveErrorPaths table-drives the observation failure modes a
// controller (or fault injector) must handle. A failed call must not
// spend a window or advance the clock.
func TestObserveErrorPaths(t *testing.T) {
	overAlloc := func(m *Machine) resource.Config {
		cfg := resource.EqualSplit(m.Topology(), 3)
		cfg.Jobs[0][0] = m.Topology()[0].Units + 5 // more cores than exist
		return cfg
	}
	cases := []struct {
		name    string
		place   bool // place the standard 3-job mix first
		observe func(m *Machine) error
		wantSub string
	}{
		{
			name:  "no jobs placed",
			place: false,
			observe: func(m *Machine) error {
				_, err := m.Observe(resource.Config{})
				return err
			},
			wantSub: "no jobs",
		},
		{
			name:  "config job count mismatch",
			place: true,
			observe: func(m *Machine) error {
				_, err := m.Observe(resource.EqualSplit(m.Topology(), 2))
				return err
			},
			wantSub: "config has 2 jobs, machine hosts 3",
		},
		{
			name:  "infeasible allocation",
			place: true,
			observe: func(m *Machine) error {
				_, err := m.Observe(overAlloc(m))
				return err
			},
			wantSub: "",
		},
		{
			name:  "shared mask length mismatch",
			place: true,
			observe: func(m *Machine) error {
				_, err := m.ObserveShared(resource.EqualSplit(m.Topology(), 3), []bool{true})
				return err
			},
			wantSub: "shared mask has 1 entries for 3 jobs",
		},
		{
			name:  "ideal observation rejects mismatch too",
			place: true,
			observe: func(m *Machine) error {
				_, err := m.ObserveIdeal(resource.EqualSplit(m.Topology(), 1))
				return err
			},
			wantSub: "config has 1 jobs, machine hosts 3",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newTestMachine(t, 50)
			if tc.place {
				placeMix(t, m)
			}
			err := tc.observe(m)
			if err == nil {
				t.Fatal("want error")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q missing %q", err, tc.wantSub)
			}
			if m.Clock() != 0 || m.Observations() != 0 {
				t.Errorf("failed observe must not spend a window: clock=%v obs=%d", m.Clock(), m.Observations())
			}
		})
	}
}

func TestAdvanceClockIdlesSimulatedTime(t *testing.T) {
	m := newTestMachine(t, 51)
	placeMix(t, m)
	if _, err := m.Observe(resource.EqualSplit(m.Topology(), 3)); err != nil {
		t.Fatal(err)
	}
	was := m.Clock()
	m.AdvanceClock(3 * m.Window())
	if m.Clock() != was+3*m.Window() {
		t.Errorf("clock = %v, want %v", m.Clock(), was+3*m.Window())
	}
	m.AdvanceClock(-5)
	m.AdvanceClock(0)
	if m.Clock() != was+3*m.Window() {
		t.Error("non-positive advances must be ignored")
	}
	if m.Observations() != 1 {
		t.Error("idling must not count as observation windows")
	}
}

func TestSharedCalibrationsAcrossMachines(t *testing.T) {
	cals := NewCalibrations()
	m1 := NewShared(resource.Default(), DefaultSpec(), 1, cals)
	if _, err := m1.AddLC("memcached", 0.3); err != nil {
		t.Fatal(err)
	}
	if cals.Len() != 1 {
		t.Fatalf("shared cache has %d entries, want 1", cals.Len())
	}
	cal1, _ := m1.Calibration("memcached")

	// A second machine sharing the cache sees the same calibration and
	// adds nothing new.
	m2 := NewShared(resource.Default(), DefaultSpec(), 2, cals)
	if _, err := m2.AddLC("memcached", 0.7); err != nil {
		t.Fatal(err)
	}
	cal2, ok := m2.Calibration("memcached")
	if !ok || cal2.MaxQPS != cal1.MaxQPS || cal2.QoSTarget != cal1.QoSTarget {
		t.Errorf("shared calibration diverged: %+v vs %+v", cal2, cal1)
	}
	if cals.Len() != 1 {
		t.Errorf("shared cache grew to %d entries on reuse", cals.Len())
	}

	// The shared values match what an unshared machine computes.
	m3 := newTestMachine(t, 3)
	if _, err := m3.AddLC("memcached", 0.3); err != nil {
		t.Fatal(err)
	}
	cal3, _ := m3.Calibration("memcached")
	if cal3.MaxQPS != cal1.MaxQPS || cal3.QoSTarget != cal1.QoSTarget {
		t.Errorf("shared and unshared calibrations diverge: %+v vs %+v", cal1, cal3)
	}

	// nil shared cache is equivalent to New.
	m4 := NewShared(resource.Default(), DefaultSpec(), 4, nil)
	if _, err := m4.AddLC("img-dnn", 0.2); err != nil {
		t.Fatal(err)
	}
}
