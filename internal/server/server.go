// Package server simulates the paper's testbed node (Table 2): a
// chip-multiprocessor machine that hosts a set of co-located
// latency-critical and background jobs, enforces resource partitions
// through the internal/isolation actuators, and measures each job over
// observation windows the way the paper reads performance counters —
// including measurement noise and the passage of (simulated) time.
//
// Every co-location policy in this repository, CLITE included, talks
// to the machine exclusively through Observe: propose a partition, pay
// an observation window, get back noisy per-job performance. That is
// the same black-box contract the real system imposes.
package server

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"clite/internal/isolation"
	"clite/internal/qos"
	"clite/internal/resource"
	"clite/internal/stats"
	"clite/internal/telemetry"
	"clite/internal/workload"
)

// Spec mirrors the paper's Table 2 testbed description.
type Spec struct {
	CPUModel      string
	Sockets       int
	SpeedGHz      float64
	LogicalCores  int
	PhysicalCores int
	L1KB, L2KB    int
	L3KB          int
	L3Ways        int
	MemoryGB      int
	OS            string
	SSDGB         int
	HDDTB         int
}

// DefaultSpec returns the Table 2 configuration.
func DefaultSpec() Spec {
	return Spec{
		CPUModel:      "Intel(R) Xeon(R) Silver 4114 (simulated)",
		Sockets:       1,
		SpeedGHz:      2.2,
		LogicalCores:  20,
		PhysicalCores: 10,
		L1KB:          32,
		L2KB:          1024,
		L3KB:          14080,
		L3Ways:        11,
		MemoryGB:      46,
		OS:            "Ubuntu 18.04.1 LTS (simulated)",
		SSDGB:         500,
		HDDTB:         2,
	}
}

// Table2 renders the spec in the paper's Table 2 layout.
func (s Spec) Table2() string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-28s %s\n", k, v) }
	row("Component", "Specification")
	row("CPU Model", s.CPUModel)
	row("Number of Sockets", fmt.Sprintf("%d", s.Sockets))
	row("Processor Speed", fmt.Sprintf("%.2fGHz", s.SpeedGHz))
	row("Logical Processor Cores", fmt.Sprintf("%d Cores (%d physical cores)", s.LogicalCores, s.PhysicalCores))
	row("Private L1 & L2 Cache Size", fmt.Sprintf("%dKB and %dKB", s.L1KB, s.L2KB))
	row("Shared L3 Cache Size", fmt.Sprintf("%d KB (%d-way set associative)", s.L3KB, s.L3Ways))
	row("Memory Capacity", fmt.Sprintf("%d GB", s.MemoryGB))
	row("Operating System", s.OS)
	row("SSD Capacity", fmt.Sprintf("%d GB", s.SSDGB))
	row("HDD Capacity", fmt.Sprintf("%d TB", s.HDDTB))
	return b.String()
}

// Job is one co-located job instance on the machine.
type Job struct {
	Workload *workload.Profile
	// LC-only fields, filled from the qos calibration:
	Load   float64 // fraction of MaxQPS currently offered
	MaxQPS float64
	QoS    float64 // p95 target, seconds
	// BG-only: isolation throughput (Iso-Perf in Eq. 3), sampled
	// during the initialization phase.
	IsoPerf float64
}

// IsLC reports whether the job is latency-critical.
func (j Job) IsLC() bool { return j.Workload.Class == workload.LatencyCritical }

// Lambda returns the currently offered request rate of an LC job.
func (j Job) Lambda() float64 { return j.Load * j.MaxQPS }

// DefaultWindow is the paper's observation period: two seconds, chosen
// so each window sees enough queries for a statistically meaningful
// p95 (Sec. 4).
const DefaultWindow = 2.0

// Calibrations is a concurrency-safe cache of per-workload QoS
// calibrations shared across machines. A calibration is a pure
// function of (workload, topology) — the paper derives it offline,
// once, before any co-location experiment — so there is no reason for
// every freshly built machine to redo the Fig. 6 load sweep. Cluster
// schedulers, which rebuild simulated machines per placement trial,
// hand one shared cache to every build; the first AddLC of a workload
// pays the sweep and every later machine reuses it.
//
// A Calibrations value assumes all sharing machines use the same
// topology (entries are keyed by workload name, matching the
// per-machine map it replaces).
type Calibrations struct {
	mu sync.Mutex
	m  map[string]qos.Calibration
}

// NewCalibrations returns an empty shared calibration cache.
func NewCalibrations() *Calibrations {
	return &Calibrations{m: make(map[string]qos.Calibration)}
}

// Len reports how many workloads have been calibrated.
func (c *Calibrations) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// get returns the cached calibration for the workload, if any.
func (c *Calibrations) get(name string) (qos.Calibration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cal, ok := c.m[name]
	return cal, ok
}

// put stores a calibration, first write wins.
func (c *Calibrations) put(name string, cal qos.Calibration) qos.Calibration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.m[name]; ok {
		return prev
	}
	c.m[name] = cal
	return cal
}

// Machine is the simulated server.
type Machine struct {
	topo   resource.Topology
	spec   Spec
	isol   *isolation.Manager
	jobs   []Job
	rng    *stats.RNG
	window float64

	clock        float64 // simulated seconds elapsed
	observations int
	calibrations map[string]qos.Calibration
	shared       *Calibrations

	// Isolation baselines, maintained eagerly so the measurement hot
	// paths never recompute them: fullAlloc is the whole-machine
	// physical allocation (constant per topology) and isoP95[i] is LC
	// job i's isolation p95 at its current (load, window). Entries are
	// refreshed by AddLC/SetLoad/SetWindow, which keeps concurrent
	// read-only measurement (the ORACLE shards) race-free.
	fullAlloc workload.Alloc
	isoP95    []float64

	// Telemetry (all nil when disabled; nil handles discard updates).
	trace        *telemetry.Tracer
	mWindows     *telemetry.Counter
	mViolations  *telemetry.Counter
	mP95         *telemetry.Histogram
	mQoSHeadroom *telemetry.Gauge
}

// New creates a machine over the topology with a deterministic
// measurement-noise stream derived from seed.
func New(topo resource.Topology, spec Spec, seed int64) *Machine {
	return &Machine{
		topo:         topo,
		spec:         spec,
		isol:         isolation.NewManager(topo),
		rng:          stats.NewRNG(seed),
		window:       DefaultWindow,
		calibrations: make(map[string]qos.Calibration),
		fullAlloc:    workload.FullMachine(topo),
	}
}

// refreshIso recomputes job i's cached isolation p95. It is a no-op
// for background jobs (their Iso-Perf normalizer is sampled once at
// AddBG time).
func (m *Machine) refreshIso(i int) {
	j := m.jobs[i]
	if j.IsLC() {
		m.isoP95[i] = j.Workload.P95(m.fullAlloc, j.Lambda(), m.window)
	}
}

// NewShared is New with a shared calibration cache: AddLC consults it
// before running the calibration sweep and publishes what it computes.
// Passing nil is equivalent to New.
func NewShared(topo resource.Topology, spec Spec, seed int64, cals *Calibrations) *Machine {
	m := New(topo, spec, seed)
	m.shared = cals
	return m
}

// SetTelemetry attaches a tracer and/or metrics registry to the
// machine. Metric handles are resolved once here so the per-window
// path never touches the registry lock. Passing nils detaches; the
// measurement stream itself is untouched either way — telemetry only
// observes.
func (m *Machine) SetTelemetry(tr *telemetry.Tracer, reg *telemetry.Registry) {
	m.trace = tr
	m.mWindows = reg.Counter("server_windows_total")
	m.mViolations = reg.Counter("server_qos_violations_total")
	m.mP95 = reg.Histogram("server_p95_seconds", telemetry.LatencyBuckets())
	m.mQoSHeadroom = reg.Gauge("server_qos_headroom")
}

// publish records one noisy observation window onto the attached
// telemetry: the window event, one QoSViolation event per LC job over
// target, p95 samples, and the tightest QoS headroom (target/p95; <1
// means violated). All sinks are nil-safe, so the disabled path is two
// pointer compares.
func (m *Machine) publish(obs *Observation) {
	if m.trace == nil && m.mWindows == nil {
		return
	}
	violations := 0
	headroom := 0.0
	for i, job := range m.jobs {
		if !job.IsLC() {
			continue
		}
		m.mP95.Observe(obs.P95[i])
		if h := job.QoS / obs.P95[i]; headroom == 0 || h < headroom {
			headroom = h
		}
		if !obs.QoSMet[i] {
			violations++
			m.trace.Emit(telemetry.QoSViolation(obs.At, i, obs.P95[i], job.QoS))
		}
	}
	m.mWindows.Inc()
	m.mViolations.Add(int64(violations))
	if headroom > 0 {
		m.mQoSHeadroom.Set(headroom)
	}
	m.trace.Emit(telemetry.ObservationWindow(obs.At, violations, obs.AllQoSMet))
}

// Topology returns the machine's partitionable resources.
func (m *Machine) Topology() resource.Topology { return m.topo }

// Spec returns the Table 2 description.
func (m *Machine) Spec() Spec { return m.spec }

// Window returns the observation window in seconds.
func (m *Machine) Window() float64 { return m.window }

// SetWindow overrides the observation window (Sec. 4: "it has
// flexibility to be configured as needed").
func (m *Machine) SetWindow(seconds float64) {
	if seconds > 0 {
		m.window = seconds
		for i := range m.jobs {
			m.refreshIso(i)
		}
	}
}

// AddLC places a latency-critical job on the machine at the given load
// fraction of its calibrated maximum, returning its job index.
func (m *Machine) AddLC(name string, load float64) (int, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return 0, err
	}
	if p.Class != workload.LatencyCritical {
		return 0, fmt.Errorf("server: %s is not latency-critical; use AddBG", name)
	}
	if load <= 0 || load > 1.5 {
		return 0, fmt.Errorf("server: load %v out of range (0, 1.5]", load)
	}
	cal, ok := m.calibrations[name]
	if !ok && m.shared != nil {
		cal, ok = m.shared.get(name)
	}
	if !ok {
		cal, err = qos.Calibrate(p, m.topo)
		if err != nil {
			return 0, err
		}
		if m.shared != nil {
			// First write wins, so two machines racing to calibrate
			// the same workload converge on one entry (the sweep is
			// deterministic, so either copy is the same value).
			cal = m.shared.put(name, cal)
		}
	}
	m.calibrations[name] = cal
	m.jobs = append(m.jobs, Job{
		Workload: p,
		Load:     load,
		MaxQPS:   cal.MaxQPS,
		QoS:      cal.QoSTarget,
	})
	m.isoP95 = append(m.isoP95, 0)
	m.refreshIso(len(m.jobs) - 1)
	return len(m.jobs) - 1, nil
}

// AddBG places a background job on the machine, returning its index.
// Its isolation throughput is sampled now (the initialization phase of
// Sec. 4) to serve as the Iso-Perf normalizer of Eq. 3.
func (m *Machine) AddBG(name string) (int, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return 0, err
	}
	if p.Class != workload.Background {
		return 0, fmt.Errorf("server: %s is not a background job; use AddLC", name)
	}
	m.jobs = append(m.jobs, Job{
		Workload: p,
		IsoPerf:  p.IsolationThroughput(m.topo),
	})
	m.isoP95 = append(m.isoP95, 0)
	return len(m.jobs) - 1, nil
}

// Jobs returns a snapshot of the co-located jobs.
func (m *Machine) Jobs() []Job {
	out := make([]Job, len(m.jobs))
	copy(out, m.jobs)
	return out
}

// NumJobs returns the number of co-located jobs.
func (m *Machine) NumJobs() int { return len(m.jobs) }

// QoSTargets returns each LC job's p95 target in seconds, keyed by
// job index (BG jobs are absent) — the SLO wiring hook: the obs plane
// registers each entry as an SLO subject with Target set from here.
// The slice of pairs is in job-index order, so iteration is
// deterministic.
func (m *Machine) QoSTargets() []JobTarget {
	var out []JobTarget
	for i, j := range m.jobs {
		if !j.IsLC() {
			continue
		}
		out = append(out, JobTarget{Job: i, Name: j.Workload.Name, Target: j.QoS})
	}
	return out
}

// JobTarget is one LC job's QoS target (see QoSTargets).
type JobTarget struct {
	Job    int
	Name   string
	Target float64
}

// SetLoad changes an LC job's offered load (the Fig. 16 dynamic-load
// scenario).
func (m *Machine) SetLoad(job int, load float64) error {
	if job < 0 || job >= len(m.jobs) {
		return fmt.Errorf("server: no job %d", job)
	}
	if !m.jobs[job].IsLC() {
		return fmt.Errorf("server: job %d is background; it has no load knob", job)
	}
	if load <= 0 || load > 1.5 {
		return fmt.Errorf("server: load %v out of range (0, 1.5]", load)
	}
	m.jobs[job].Load = load
	m.refreshIso(job)
	return nil
}

// Observation is the result of running one observation window under a
// partition configuration.
type Observation struct {
	Config resource.Config
	// Per-job measurements, indexed like Jobs():
	P95        []float64 // seconds; 0 for BG jobs
	Throughput []float64 // ops/s; 0 for LC jobs
	QoSMet     []bool    // always true for BG jobs
	NormPerf   []float64 // performance normalized to isolation (Colo-Perf/Iso-Perf)
	AllQoSMet  bool
	At         float64 // simulated time when the window ended
}

// Observe applies the partition and runs one observation window,
// returning noisy per-job measurements. Simulated time advances by the
// window length (actuation overlaps the previous window, per Sec. 5.2,
// so it costs no extra wall time here but is still accounted by the
// isolation manager).
func (m *Machine) Observe(cfg resource.Config) (Observation, error) {
	return m.observe(cfg, true)
}

// ObserveIdeal is Observe without measurement noise and without
// advancing time. The ORACLE policy and tests use it as ground truth;
// online policies must not.
func (m *Machine) ObserveIdeal(cfg resource.Config) (Observation, error) {
	return m.observe(cfg, false)
}

// sharedPoolPenalty is the efficiency of unmanaged sharing: jobs left
// to contend for a pooled set of resources without isolation lose part
// of their nominal share to interference (destructive cache sharing,
// scheduler migrations, bandwidth fights). Heracles leaves its
// non-primary jobs unpartitioned, which is why it cannot co-locate
// multiple LC jobs (Fig. 7a).
const sharedPoolPenalty = 0.65

// ObserveShared is Observe for policies that leave a subset of jobs
// unpartitioned: jobs with shared[i] == true are measured as if they
// received their configured share degraded by the unmanaged-contention
// penalty (when two or more jobs share the pool). The configuration
// itself must still be feasible — the shares express how the pool
// divides on average.
func (m *Machine) ObserveShared(cfg resource.Config, shared []bool) (Observation, error) {
	if len(shared) != len(m.jobs) {
		return Observation{}, fmt.Errorf("server: shared mask has %d entries for %d jobs", len(shared), len(m.jobs))
	}
	nShared := 0
	for _, s := range shared {
		if s {
			nShared++
		}
	}
	penalty := 1.0
	if nShared >= 2 {
		penalty = sharedPoolPenalty
	}
	return m.observeScaled(cfg, true, shared, penalty)
}

func (m *Machine) observe(cfg resource.Config, noisy bool) (Observation, error) {
	return m.observeScaled(cfg, noisy, nil, 1)
}

func (m *Machine) observeScaled(cfg resource.Config, noisy bool, scaledJobs []bool, penalty float64) (Observation, error) {
	if len(m.jobs) == 0 {
		return Observation{}, fmt.Errorf("server: no jobs placed")
	}
	if cfg.NumJobs() != len(m.jobs) {
		return Observation{}, fmt.Errorf("server: config has %d jobs, machine hosts %d", cfg.NumJobs(), len(m.jobs))
	}
	if noisy {
		if _, err := m.isol.Apply(cfg); err != nil {
			return Observation{}, err
		}
		m.clock += m.window
		m.observations++
	} else if err := cfg.Validate(m.topo); err != nil {
		return Observation{}, err
	}
	obs := Observation{
		Config:     cfg.Clone(),
		P95:        make([]float64, len(m.jobs)),
		Throughput: make([]float64, len(m.jobs)),
		QoSMet:     make([]bool, len(m.jobs)),
		NormPerf:   make([]float64, len(m.jobs)),
		AllQoSMet:  true,
		At:         m.clock,
	}
	for i, job := range m.jobs {
		phys := workload.Physical(m.topo, cfg.Jobs[i])
		if scaledJobs != nil && scaledJobs[i] && penalty < 1 {
			phys.CacheMB *= penalty
			phys.MemBwGB *= penalty
			phys.MemGB *= penalty
			phys.DiskBw *= penalty
			if phys.Cores = int(float64(phys.Cores) * penalty); phys.Cores < 1 {
				phys.Cores = 1
			}
		}
		if job.IsLC() {
			lambda := job.Lambda()
			q := job.Workload.Queue(phys, lambda)
			if noisy {
				obs.P95[i] = q.MeasureP95(lambda, m.window, m.rng)
			} else {
				obs.P95[i] = q.P95(lambda, m.window)
			}
			obs.QoSMet[i] = obs.P95[i] <= job.QoS
			if !obs.QoSMet[i] {
				obs.AllQoSMet = false
			}
			obs.NormPerf[i] = m.isoP95[i] / obs.P95[i]
		} else {
			thr := job.Workload.Throughput(phys)
			if noisy {
				thr *= m.rng.LogNormalFactor(0.02)
			}
			obs.Throughput[i] = thr
			obs.QoSMet[i] = true
			obs.NormPerf[i] = thr / job.IsoPerf
		}
	}
	if noisy {
		m.publish(&obs)
	}
	return obs, nil
}

// JobMeasurement is the noise-free measurement of a single job under a
// hypothetical allocation, independent of the other jobs' shares.
type JobMeasurement struct {
	P95        float64
	Throughput float64
	QoSMet     bool
	NormPerf   float64
}

// MeasureJobIdeal evaluates one job in isolation from the rest of the
// partition: because the isolation tools make per-job performance a
// function of the job's own allocation only, a whole-configuration
// ideal observation decomposes into per-job measurements. The ORACLE
// brute-force policy exploits this for memoization; online policies
// must not use it.
func (m *Machine) MeasureJobIdeal(job int, alloc resource.Allocation) (JobMeasurement, error) {
	if job < 0 || job >= len(m.jobs) {
		return JobMeasurement{}, fmt.Errorf("server: no job %d", job)
	}
	j := m.jobs[job]
	phys := workload.Physical(m.topo, alloc)
	if j.IsLC() {
		lambda := j.Lambda()
		p95 := j.Workload.P95(phys, lambda, m.window)
		return JobMeasurement{
			P95:      p95,
			QoSMet:   p95 <= j.QoS,
			NormPerf: m.isoP95[job] / p95,
		}, nil
	}
	thr := j.Workload.Throughput(phys)
	return JobMeasurement{
		Throughput: thr,
		QoSMet:     true,
		NormPerf:   thr / j.IsoPerf,
	}, nil
}

// Clock returns the simulated time in seconds.
func (m *Machine) Clock() float64 { return m.clock }

// Observations returns how many (noisy) windows have been run — the
// paper's Fig. 15 overhead metric is a count of sampled configurations.
func (m *Machine) Observations() int { return m.observations }

// ActuationCost returns the cumulative simulated actuator latency.
func (m *Machine) ActuationCost() time.Duration { return m.isol.ActuationCost() }

// Calibration exposes the QoS calibration used for an LC workload
// hosted on this machine.
func (m *Machine) Calibration(name string) (qos.Calibration, bool) {
	cal, ok := m.calibrations[name]
	return cal, ok
}
