package server

import (
	"errors"

	"clite/internal/resource"
)

// Observer is the observation contract a co-location controller
// consumes: propose a partition, pay an observation window, get back
// noisy per-job performance. *Machine is the canonical, perfectly
// reliable implementation; internal/faults wraps one to inject the
// failures a warehouse-scale deployment actually sees (failed counter
// reads, corrupted latency samples, degraded actuation, node loss).
//
// The interface is deliberately the *online* surface only: ObserveIdeal
// and MeasureJobIdeal stay on *Machine because they are ground-truth
// oracles no production controller could call.
type Observer interface {
	// Topology returns the machine's partitionable resources.
	Topology() resource.Topology
	// Jobs returns a snapshot of the co-located jobs.
	Jobs() []Job
	// NumJobs returns the number of co-located jobs.
	NumJobs() int
	// Window returns the observation window in seconds.
	Window() float64
	// Clock returns the simulated time in seconds.
	Clock() float64
	// Observations counts the noisy windows run so far.
	Observations() int
	// Observe applies the partition and runs one observation window.
	// Errors matching ErrObservationFailed are transient (the window
	// was spent but produced no usable counters); errors matching
	// ErrNodeFailed are permanent.
	Observe(cfg resource.Config) (Observation, error)
	// AdvanceClock lets simulated time pass without running a window —
	// a controller idling, e.g. backing off after a failed observation.
	AdvanceClock(seconds float64)
}

var _ Observer = (*Machine)(nil)

// ErrObservationFailed marks a transient observation failure: the
// window elapsed but its measurements were lost (a failed performance-
// counter read, a monitoring hiccup). Retrying the same configuration
// is reasonable.
var ErrObservationFailed = errors.New("server: observation window failed")

// ErrNodeFailed marks a permanent failure: the node is gone and no
// further window on it can succeed. Controllers should fall back to a
// known-safe answer; schedulers should drain and reschedule.
var ErrNodeFailed = errors.New("server: node failed")

// AdvanceClock advances simulated time without running an observation
// window. The resilient controller uses it to express retry backoff in
// simulated — not wall — time.
func (m *Machine) AdvanceClock(seconds float64) {
	if seconds > 0 {
		m.clock += seconds
	}
}
