// Batchfarm: a node mostly running throughput work — three PARSEC-like
// batch jobs — that must also host two latency-critical services.
// Demonstrates CLITE's multiple-BG-aware objective (Eq. 3 maximizes
// the geometric mean of all batch jobs' normalized performance, so no
// single batch job is starved to feed another).
package main

import (
	"fmt"
	"log"

	"clite"
)

func main() {
	m := clite.NewMachine(11)
	if _, err := m.AddLC("memcached", 0.15); err != nil {
		log.Fatal(err)
	}
	if _, err := m.AddLC("img-dnn", 0.10); err != nil {
		log.Fatal(err)
	}
	batch := []string{"blackscholes", "fluidanimate", "swaptions"}
	for _, name := range batch {
		if _, err := m.AddBG(name); err != nil {
			log.Fatal(err)
		}
	}

	ctrl := clite.NewController(m, clite.Options{BO: clite.BOOptions{Seed: 11}})
	res, err := ctrl.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("2 LC + 3 BG co-location: QoS met = %v after %d samples\n\n", res.QoSMeetable, res.SamplesUsed)
	for i, job := range m.Jobs() {
		if job.IsLC() {
			fmt.Printf("%-13s p95 %.2fms (target %.2fms)\n",
				job.Workload.Name, res.BestObs.P95[i]*1000, job.QoS*1000)
		}
	}
	fmt.Println()
	var worst, sum float64 = 2, 0
	n := 0
	for i, job := range m.Jobs() {
		if job.IsLC() {
			continue
		}
		perf := res.BestObs.NormPerf[i]
		fmt.Printf("%-13s %.0f%% of isolation throughput\n", job.Workload.Name, perf*100)
		sum += perf
		n++
		if perf < worst {
			worst = perf
		}
	}
	fmt.Printf("\nmean batch perf %.0f%%, worst %.0f%% — the geometric-mean objective keeps them balanced\n",
		sum/float64(n)*100, worst*100)
}
