// Warehouse: the paper's motivating context — a rack of nodes
// receiving a stream of latency-critical and batch job requests. Each
// node runs CLITE for admission control and partitioning; jobs no node
// can host within QoS are rejected ("scheduled elsewhere", Sec. 4).
package main

import (
	"errors"
	"fmt"
	"log"

	"clite"
)

func main() {
	sched := clite.NewScheduler(clite.SchedulerOptions{Nodes: 3, Seed: 9})

	stream := []clite.JobRequest{
		{Workload: "memcached", Load: 0.30},
		{Workload: "swaptions"},
		{Workload: "img-dnn", Load: 0.20},
		{Workload: "xapian", Load: 0.20},
		{Workload: "streamcluster"},
		{Workload: "masstree", Load: 0.20},
		{Workload: "memcached", Load: 1.40}, // hopeless: past the knee even alone
		{Workload: "specjbb", Load: 0.20},
	}

	for _, req := range stream {
		label := req.Workload
		if req.IsLC() {
			label = fmt.Sprintf("%s@%.0f%%", req.Workload, req.Load*100)
		}
		placement, err := sched.Place(req)
		switch {
		case errors.Is(err, clite.ErrUnplaceable):
			fmt.Printf("%-16s REJECTED — no node can host it within QoS\n", label)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("%-16s → node %d  (QoS met: %v, %d samples to decide)\n",
				label, placement.Node, placement.Result.QoSMeetable, placement.Result.SamplesUsed)
		}
	}

	fmt.Println("\ncluster state:")
	for _, n := range sched.Snapshot() {
		fmt.Printf("  node %d: %v", n.ID, n.Jobs)
		if n.BGPerf > 0 {
			fmt.Printf("  (batch at %.0f%% of isolation)", n.BGPerf*100)
		}
		fmt.Println()
	}
}
