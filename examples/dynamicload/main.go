// Dynamicload: the paper's Fig. 16 scenario as a runnable program —
// memcached's diurnal load ramps 10% → 20% → 30%; CLITE monitors the
// converged partition, detects each violation, and re-partitions.
package main

import (
	"fmt"
	"log"

	"clite"
)

func main() {
	m := clite.NewMachine(3)
	if _, err := m.AddLC("img-dnn", 0.10); err != nil {
		log.Fatal(err)
	}
	if _, err := m.AddLC("masstree", 0.10); err != nil {
		log.Fatal(err)
	}
	memcached, err := m.AddLC("memcached", 0.10)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.AddBG("fluidanimate"); err != nil {
		log.Fatal(err)
	}

	ctrl := clite.NewController(m, clite.Options{BO: clite.BOOptions{Seed: 3}})
	res, err := ctrl.Run()
	if err != nil {
		log.Fatal(err)
	}
	report := func(phase string, load float64) {
		fmt.Printf("%-28s load=%2.0f%%  samples=%3d  QoS met=%-5v  memcached cores=%d  batch=%2.0f%%\n",
			phase, load*100, res.SamplesUsed, res.BestObs.AllQoSMet,
			res.Best.Jobs[memcached][0], res.BestObs.NormPerf[3]*100)
	}
	report("initial convergence", 0.10)

	for _, load := range []float64{0.20, 0.30} {
		if err := m.SetLoad(memcached, load); err != nil {
			log.Fatal(err)
		}
		// Post-convergence monitoring (Sec. 4): watch the current
		// partition; re-invoke on sustained violation.
		reinvoke, err := ctrl.Monitor(res.Best, 6)
		if err != nil {
			log.Fatal(err)
		}
		if !reinvoke {
			fmt.Printf("%-28s load=%2.0f%%  old partition still meets QoS\n", "monitor: no action", load*100)
			continue
		}
		fmt.Printf("%-28s load=%2.0f%%  violation detected, re-partitioning...\n", "monitor: re-invoke", load*100)
		res, err = ctrl.Rerun(res)
		if err != nil {
			log.Fatal(err)
		}
		report("re-converged", load)
	}
	fmt.Println("\nsimulated wall time:", m.Clock(), "seconds of observation windows;",
		"actuation overhead:", m.ActuationCost())
}
