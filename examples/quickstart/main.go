// Quickstart: co-locate two latency-critical jobs with one background
// job and let CLITE find a partition that meets both QoS targets while
// keeping the background job fast.
package main

import (
	"fmt"
	"log"

	"clite"
)

func main() {
	// A simulated Xeon with 20 cores, an 11-way LLC, and 10-unit
	// memory-bandwidth / memory-capacity / disk-bandwidth knobs.
	m := clite.NewMachine(42)

	// Loads are fractions of each workload's calibrated maximum
	// (the knee of its isolation QPS-vs-p95 curve).
	if _, err := m.AddLC("memcached", 0.30); err != nil {
		log.Fatal(err)
	}
	if _, err := m.AddLC("img-dnn", 0.20); err != nil {
		log.Fatal(err)
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		log.Fatal(err)
	}

	ctrl := clite.NewController(m, clite.Options{BO: clite.BOOptions{Seed: 42}})
	res, err := ctrl.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged after %d sampled configurations\n", res.SamplesUsed)
	fmt.Printf("every QoS met: %v  (objective score %.3f)\n\n", res.QoSMeetable, res.BestScore)

	topo := m.Topology()
	for i, job := range m.Jobs() {
		fmt.Printf("%-14s gets ", job.Workload.Name)
		for r, spec := range topo {
			fmt.Printf("%d %s  ", res.Best.Jobs[i][r], spec.Kind)
		}
		if job.IsLC() {
			fmt.Printf("→ p95 %.2fms (target %.2fms)\n", res.BestObs.P95[i]*1000, job.QoS*1000)
		} else {
			fmt.Printf("→ %.0f%% of isolation throughput\n", res.BestObs.NormPerf[i]*100)
		}
	}
}
