// Websearch: the paper's motivating scenario — a user-facing search
// stack (three latency-critical services with different resource
// appetites) sharing one node with batch analytics. Compares CLITE
// against PARTIES and the offline ORACLE on the same mix.
package main

import (
	"fmt"
	"log"

	"clite"
)

// buildStack places the search stack on a fresh machine: xapian serves
// queries (disk-sensitive), memcached caches results (capacity-
// sensitive), masstree holds the index metadata (bandwidth-sensitive),
// and streamcluster crunches click logs in the background.
func buildStack(seed int64) *clite.Machine {
	m := clite.NewMachine(seed)
	for _, job := range []struct {
		name string
		load float64
	}{
		{"xapian", 0.20},
		{"memcached", 0.20},
		{"masstree", 0.15},
	} {
		if _, err := m.AddLC(job.name, job.load); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := m.AddBG("streamcluster"); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	const seed = 7
	policies := []clite.Policy{clite.CLITEPolicy(seed)}
	for _, p := range clite.Baselines(seed) {
		if p.Name() == "PARTIES" || p.Name() == "ORACLE" {
			policies = append(policies, p)
		}
	}

	fmt.Println("search stack: xapian@20% + memcached@20% + masstree@15% + streamcluster (batch)")
	fmt.Printf("\n%-9s %-8s %-8s %-22s %s\n", "policy", "QoS met", "samples", "batch throughput", "score")
	for _, p := range policies {
		m := buildStack(seed)
		res, err := p.Run(m)
		if err != nil {
			log.Fatal(err)
		}
		batch := res.BestObs.NormPerf[3]
		fmt.Printf("%-9s %-8v %-8d %-22s %.3f\n",
			p.Name(), res.QoSMeetable, res.SamplesUsed,
			fmt.Sprintf("%.0f%% of isolation", batch*100), res.BestScore)
	}
	fmt.Println("\nexpected shape (paper Fig. 12/13): ORACLE ≥ CLITE, both well above PARTIES;")
	fmt.Println("PARTIES stops at the first QoS-meeting partition and strands the batch job.")
}
